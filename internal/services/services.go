// Package services implements the core services of Figure 1 as agents on
// the platform of package agent: information, brokerage, matchmaking,
// monitoring, scheduling, persistent storage, authentication, and
// simulation, plus the Application Container agents that host end-user
// services. The planning and coordination services live in their own
// packages (planner, coordination) and talk to these over the same message
// ontologies.
//
// Core services are persistent and reliable; end-user services (the
// containers) may fail with their nodes, which is what exercises the
// re-planning flow of Figure 3.
package services

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/grid"
)

// Well-known agent names for the core services.
const (
	InformationName    = "information"
	BrokerageName      = "brokerage"
	MatchmakingName    = "matchmaking"
	MonitoringName     = "monitoring"
	SchedulingName     = "scheduling"
	StorageName        = "storage"
	AuthenticationName = "authentication"
	SimulationName     = "simulation"
	PlanningName       = "planning"
	CoordinationName   = "coordination"
	OntologyName       = "ontology"
)

// Ontology names (the vocabulary tag on messages).
const (
	OntInformation = "grid-information"
	OntBrokerage   = "grid-brokerage"
	OntMatchmaking = "grid-matchmaking"
	OntMonitoring  = "grid-monitoring"
	OntScheduling  = "grid-scheduling"
	OntStorage     = "grid-storage"
	OntAuth        = "grid-authentication"
	OntSimulation  = "grid-simulation"
	OntExecution   = "grid-execution"
	OntPlanning    = "grid-planning"
	OntOntology    = "grid-ontology"
)

// CallTimeout is the default synchronous call budget between services.
const CallTimeout = 30 * time.Second

// ---------------------------------------------------------------------------
// Information service: all services register their offerings here (white and
// yellow pages).

// Offer describes one registered service offering.
type Offer struct {
	Name     string // agent name providing the offer
	Type     string // offering type, e.g. "brokerage", "end-user:P3DR"
	Location string
}

// LookupRequest asks for the agents offering a type.
type LookupRequest struct{ Type string }

// LookupReply lists the matching offers sorted by agent name.
type LookupReply struct{ Offers []Offer }

// Information is the information service agent.
type Information struct {
	mu     sync.Mutex
	offers map[string][]Offer // type -> offers
}

// NewInformation returns an empty information service.
func NewInformation() *Information {
	return &Information{offers: make(map[string][]Offer)}
}

// HandleMessage implements agent.Handler.
func (s *Information) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch content := msg.Content.(type) {
	case Offer:
		s.mu.Lock()
		s.offers[content.Type] = append(s.offers[content.Type], content)
		s.mu.Unlock()
		if msg.Performative == agent.Request {
			_ = ctx.Reply(msg, agent.Agree, content)
		}
	case LookupRequest:
		s.mu.Lock()
		offers := append([]Offer(nil), s.offers[content.Type]...)
		s.mu.Unlock()
		sort.Slice(offers, func(i, j int) bool { return offers[i].Name < offers[j].Name })
		_ = ctx.Reply(msg, agent.Inform, LookupReply{Offers: offers})
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("information: unsupported content %T", msg.Content))
	}
}

// RegisterOffer registers an offering with the information service on
// behalf of ctx's agent.
func RegisterOffer(ctx *agent.Context, offerType, location string) error {
	_, err := ctx.Call(InformationName, OntInformation,
		Offer{Name: ctx.Name(), Type: offerType, Location: location}, CallTimeout)
	return err
}

// Lookup queries the information service for offers of a type.
func Lookup(ctx *agent.Context, offerType string) ([]Offer, error) {
	reply, err := ctx.Call(InformationName, OntInformation, LookupRequest{Type: offerType}, CallTimeout)
	if err != nil {
		return nil, err
	}
	lr, ok := reply.Content.(LookupReply)
	if !ok {
		return nil, fmt.Errorf("services: unexpected lookup reply %T", reply.Content)
	}
	return lr.Offers, nil
}

// ---------------------------------------------------------------------------
// Monitoring service: accurate, on-demand resource status (the brokerage's
// view may be stale; monitoring's is authoritative).

// NodeStatusRequest asks for the live status of a node.
type NodeStatusRequest struct{ Node string }

// NodeStatusReply reports it.
type NodeStatusReply struct {
	Node  string
	Known bool
	Up    bool
}

// SubscribeStatus subscribes the sender to node status-change events; the
// monitoring service delivers a StatusEvent to every subscriber whenever a
// PollStatus detects a node changed state.
type SubscribeStatus struct{}

// UnsubscribeStatus removes the sender's subscription.
type UnsubscribeStatus struct{}

// PollStatus makes the monitoring service re-scan the grid and notify
// subscribers of changes (in a deployment a ticker would send this; tests
// and scenarios drive it explicitly for determinism).
type PollStatus struct{}

// StatusEvent is pushed to subscribers when a node changes state.
type StatusEvent struct {
	Node string
	Up   bool
}

// Monitoring is the monitoring service agent: authoritative on-demand node
// status plus push subscriptions for status changes.
type Monitoring struct {
	Grid *grid.Grid

	mu   sync.Mutex
	subs map[string]bool
	last map[string]bool
}

// HandleMessage implements agent.Handler.
func (s *Monitoring) HandleMessage(ctx *agent.Context, msg agent.Message) {
	switch req := msg.Content.(type) {
	case NodeStatusRequest:
		n := s.Grid.Node(req.Node)
		reply := NodeStatusReply{Node: req.Node, Known: n != nil}
		if n != nil {
			reply.Up = n.Up()
		}
		_ = ctx.Reply(msg, agent.Inform, reply)
	case SubscribeStatus:
		s.mu.Lock()
		if s.subs == nil {
			s.subs = make(map[string]bool)
		}
		s.subs[msg.Sender] = true
		if s.last == nil {
			s.last = s.snapshot()
		}
		s.mu.Unlock()
		_ = ctx.Reply(msg, agent.Agree, nil)
	case UnsubscribeStatus:
		s.mu.Lock()
		delete(s.subs, msg.Sender)
		s.mu.Unlock()
		_ = ctx.Reply(msg, agent.Agree, nil)
	case PollStatus:
		events := s.poll()
		for _, ev := range events {
			s.mu.Lock()
			subs := make([]string, 0, len(s.subs))
			for name := range s.subs {
				subs = append(subs, name)
			}
			s.mu.Unlock()
			sort.Strings(subs)
			for _, sub := range subs {
				_ = ctx.Send(sub, agent.Inform, OntMonitoring, ev)
			}
		}
		_ = ctx.Reply(msg, agent.Inform, len(events))
	default:
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("monitoring: unsupported content %T", msg.Content))
	}
}

// snapshot captures every node's up/down state; callers hold s.mu.
func (s *Monitoring) snapshot() map[string]bool {
	out := make(map[string]bool)
	for _, n := range s.Grid.Nodes() {
		out[n.ID] = n.Up()
	}
	return out
}

// poll diffs the grid against the last snapshot and returns the changes.
func (s *Monitoring) poll() []StatusEvent {
	s.mu.Lock()
	defer s.mu.Unlock()
	cur := s.snapshot()
	var events []StatusEvent
	if s.last != nil {
		names := make([]string, 0, len(cur))
		for n := range cur {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			if prev, seen := s.last[n]; !seen || prev != cur[n] {
				events = append(events, StatusEvent{Node: n, Up: cur[n]})
			}
		}
	}
	s.last = cur
	return events
}

// ---------------------------------------------------------------------------
// Authentication service: token issue and verification (HMAC-based).

// LoginRequest authenticates a principal.
type LoginRequest struct{ Principal, Secret string }

// LoginReply carries the session token.
type LoginReply struct{ Token string }

// VerifyRequest checks a token.
type VerifyRequest struct{ Token string }

// VerifyReply reports the principal a valid token belongs to.
type VerifyReply struct {
	Valid     bool
	Principal string
}

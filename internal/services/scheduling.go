package services

import (
	"fmt"
	"log/slog"

	"repro/internal/agent"
	"repro/internal/grid"
	"repro/internal/telemetry"
)

// TaskSpec describes one independent task to schedule.
type TaskSpec struct {
	ID       string
	Service  string
	BaseTime float64
	DataMB   float64
}

// Assignment places a task on a container with its predicted interval.
type Assignment struct {
	Task      string
	Container string
	Node      string
	Start     float64
	Finish    float64
}

// ScheduleRequest asks for a schedule of independent tasks over the
// containers currently offering their services. Heuristic selects the
// policy (zero value: min-min).
type ScheduleRequest struct {
	Tasks     []TaskSpec
	Heuristic Heuristic
}

// ScheduleReply carries the schedule and its makespan.
type ScheduleReply struct {
	Assignments []Assignment
	Makespan    float64
}

// Scheduling is the scheduling service agent. It implements the classic
// min-min list-scheduling heuristic over predicted execution times: at each
// step, the task whose best completion time is smallest is placed on the
// container achieving it.
type Scheduling struct {
	Grid *grid.Grid

	// Telemetry, when set, counts scheduling decisions per heuristic and
	// observes makespans (see OBSERVABILITY.md).
	Telemetry *telemetry.Registry

	// Logger, when set, records one debug line per scheduling decision.
	Logger *slog.Logger
}

// Schedule computes the min-min schedule (the default policy); use
// ScheduleWith for the other heuristics.
func (s *Scheduling) Schedule(tasks []TaskSpec) ScheduleReply {
	return s.ScheduleWith(tasks, HeuristicMinMin)
}

// record feeds the telemetry registry after one scheduling decision.
func (s *Scheduling) record(h Heuristic, requested int, out ScheduleReply) {
	if s.Logger != nil {
		s.Logger.Debug("schedule computed",
			slog.String("heuristic", h.String()), slog.Int("tasks", requested),
			slog.Int("assigned", len(out.Assignments)), slog.Float64("makespanSec", out.Makespan))
	}
	tel := s.Telemetry
	if tel == nil {
		return
	}
	tel.Counter("scheduling.requests").Inc()
	tel.Counter("scheduling.requests." + h.String()).Inc()
	tel.Counter("scheduling.tasks.assigned").Add(int64(len(out.Assignments)))
	tel.Counter("scheduling.tasks.dropped").Add(int64(requested - len(out.Assignments)))
	tel.Histogram("scheduling.makespan.seconds",
		[]float64{60, 300, 1800, 3600, 10800, 43200}).Observe(out.Makespan)
}

// HandleMessage implements agent.Handler.
func (s *Scheduling) HandleMessage(ctx *agent.Context, msg agent.Message) {
	req, ok := msg.Content.(ScheduleRequest)
	if !ok {
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("scheduling: unsupported content %T", msg.Content))
		return
	}
	_ = ctx.Reply(msg, agent.Inform, s.ScheduleWith(req.Tasks, req.Heuristic))
}

package services

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/grid"
)

func TestStorageSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")

	s := NewStorage()
	s.Put("plans/a", []byte("v1"))
	s.Put("plans/a", []byte("v2"))
	s.Put("checkpoint/T1", []byte(`{"x":1}`))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewStorage()
	fresh.Put("garbage", []byte("to be replaced"))
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if keys := fresh.Keys(""); len(keys) != 2 {
		t.Fatalf("keys after load = %v", keys)
	}
	if v, ver, ok := fresh.Get("plans/a", 0); !ok || ver != 2 || string(v) != "v2" {
		t.Errorf("latest = %q v%d ok=%v", v, ver, ok)
	}
	if v, _, ok := fresh.Get("plans/a", 1); !ok || string(v) != "v1" {
		t.Errorf("v1 = %q", v)
	}
	if _, _, ok := fresh.Get("garbage", 0); ok {
		t.Error("Load did not replace contents")
	}
	// Round trip again is stable.
	path2 := filepath.Join(dir, "store2.json")
	if err := fresh.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Error("save not deterministic")
	}
}

func TestStorageLoadErrors(t *testing.T) {
	s := NewStorage()
	if err := s.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	_ = os.WriteFile(bad, []byte("{"), 0o644)
	if err := s.Load(bad); err == nil {
		t.Error("corrupt file loaded")
	}
	empty := filepath.Join(t.TempDir(), "emptykey.json")
	_ = os.WriteFile(empty, []byte(`{"keys":[{"key":"","versions":[]}]}`), 0o644)
	if err := s.Load(empty); err == nil {
		t.Error("empty key accepted")
	}
}

func TestMonitoringSubscriptions(t *testing.T) {
	g := grid.New(1)
	_ = g.AddNode(&grid.Node{ID: "n1", Hardware: grid.Hardware{Speed: 1}})
	_ = g.AddNode(&grid.Node{ID: "n2", Hardware: grid.Hardware{Speed: 1}})
	p := agent.NewPlatform()
	defer p.Shutdown()
	p.MustRegister(MonitoringName, &Monitoring{Grid: g})

	events := make(chan StatusEvent, 16)
	sub := p.MustRegister("watcher", agent.HandlerFunc(func(_ *agent.Context, msg agent.Message) {
		if ev, ok := msg.Content.(StatusEvent); ok {
			events <- ev
		}
	}))
	if _, err := sub.Call(MonitoringName, OntMonitoring, SubscribeStatus{}, time.Second); err != nil {
		t.Fatal(err)
	}

	// No change: poll produces nothing.
	reply, err := sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n := reply.Content.(int); n != 0 {
		t.Errorf("initial poll events = %d, want 0", n)
	}

	// Fail a node: one event for n1.
	_ = g.SetNodeUp("n1", false)
	reply, _ = sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	if n := reply.Content.(int); n != 1 {
		t.Fatalf("poll events = %d, want 1", n)
	}
	select {
	case ev := <-events:
		if ev.Node != "n1" || ev.Up {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}

	// Repair both state changes at once. Delivery is asynchronous, so
	// collect with a deadline rather than assuming arrival before the poll
	// reply.
	_ = g.SetNodeUp("n1", true)
	_ = g.SetNodeUp("n2", false)
	reply, _ = sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	if n := reply.Content.(int); n != 2 {
		t.Errorf("poll events = %d, want 2", n)
	}
	deadline := time.After(time.Second)
	for drained := 0; drained < 2; {
		select {
		case <-events:
			drained++
		case <-deadline:
			t.Fatalf("only %d of 2 events delivered", drained)
		}
	}

	// Unsubscribe: further changes are not delivered.
	if _, err := sub.Call(MonitoringName, OntMonitoring, UnsubscribeStatus{}, time.Second); err != nil {
		t.Fatal(err)
	}
	_ = g.SetNodeUp("n2", true)
	_, _ = sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	select {
	case ev := <-events:
		t.Errorf("event after unsubscribe: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

package services

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/grid"
)

func TestStorageSaveLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")

	s := NewStorage()
	_, _ = s.Put("plans/a", []byte("v1"))
	_, _ = s.Put("plans/a", []byte("v2"))
	_, _ = s.Put("checkpoint/T1", []byte(`{"x":1}`))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}

	fresh := NewStorage()
	_, _ = fresh.Put("garbage", []byte("to be replaced"))
	if err := fresh.Load(path); err != nil {
		t.Fatal(err)
	}
	if keys := fresh.Keys(""); len(keys) != 2 {
		t.Fatalf("keys after load = %v", keys)
	}
	if v, ver, ok, _ := fresh.Get("plans/a", 0); !ok || ver != 2 || string(v) != "v2" {
		t.Errorf("latest = %q v%d ok=%v", v, ver, ok)
	}
	if v, _, ok, _ := fresh.Get("plans/a", 1); !ok || string(v) != "v1" {
		t.Errorf("v1 = %q", v)
	}
	if _, _, ok, _ := fresh.Get("garbage", 0); ok {
		t.Error("Load did not replace contents")
	}
	// Round trip again is stable.
	path2 := filepath.Join(dir, "store2.json")
	if err := fresh.Save(path2); err != nil {
		t.Fatal(err)
	}
	b1, _ := os.ReadFile(path)
	b2, _ := os.ReadFile(path2)
	if string(b1) != string(b2) {
		t.Error("save not deterministic")
	}
}

// TestStorageSaveLoadProperty is a randomized round-trip property: whatever
// key/version/byte structure goes in, Save followed by Load reproduces it
// exactly, including version ordering and empty values.
func TestStorageSaveLoadProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 20; trial++ {
		s := NewStorage()
		want := make(map[string][][]byte)
		prefixes := []string{"plans/", "checkpoint/", "journal/", ""}
		for i, n := 0, 1+rng.Intn(12); i < n; i++ {
			key := fmt.Sprintf("%sk%d", prefixes[rng.Intn(len(prefixes))], rng.Intn(8))
			value := make([]byte, rng.Intn(64))
			rng.Read(value)
			_, _ = s.Put(key, value)
			want[key] = append(want[key], append([]byte(nil), value...))
		}

		path := filepath.Join(t.TempDir(), "store.json")
		if err := s.Save(path); err != nil {
			t.Fatal(err)
		}
		fresh := NewStorage()
		_, _ = fresh.Put("stale", []byte("gone after load"))
		if err := fresh.Load(path); err != nil {
			t.Fatal(err)
		}

		if got := fresh.Keys(""); len(got) != len(want) {
			t.Fatalf("trial %d: %d keys after load, want %d (%v)", trial, len(got), len(want), got)
		}
		for key, versions := range want {
			if _, latest, ok, _ := fresh.Get(key, 0); !ok || latest != len(versions) {
				t.Fatalf("trial %d: key %q latest = v%d ok=%v, want v%d", trial, key, latest, ok, len(versions))
			}
			for i, value := range versions {
				got, _, ok, _ := fresh.Get(key, i+1)
				if !ok || !bytes.Equal(got, value) {
					t.Fatalf("trial %d: key %q v%d = %q ok=%v, want %q", trial, key, i+1, got, ok, value)
				}
			}
		}
	}
}

// TestStorageLoadTruncated covers the crash-while-saving shape: a dump cut
// off mid-JSON must fail with an error wrapping the decode cause, and the
// store being loaded into must keep its previous contents.
func TestStorageLoadTruncated(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "store.json")
	s := NewStorage()
	_, _ = s.Put("plans/a", []byte("v1"))
	_, _ = s.Put("checkpoint/T1", []byte(`{"x":1}`))
	if err := s.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	truncated := filepath.Join(dir, "truncated.json")
	if err := os.WriteFile(truncated, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	target := NewStorage()
	_, _ = target.Put("survivor", []byte("intact"))
	loadErr := target.Load(truncated)
	if loadErr == nil {
		t.Fatal("truncated dump loaded without error")
	}
	if !strings.Contains(loadErr.Error(), "storage load") {
		t.Errorf("error %q does not identify the storage load", loadErr)
	}
	if errors.Unwrap(loadErr) == nil {
		t.Errorf("error %q does not wrap the decode cause", loadErr)
	}
	if v, _, ok, _ := target.Get("survivor", 0); !ok || string(v) != "intact" {
		t.Errorf("failed load clobbered the store: %q ok=%v", v, ok)
	}
	if _, _, ok, _ := target.Get("plans/a", 0); ok {
		t.Error("failed load partially applied the dump")
	}
}

func TestStorageLoadErrors(t *testing.T) {
	s := NewStorage()
	if err := s.Load(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file loaded")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	_ = os.WriteFile(bad, []byte("{"), 0o644)
	if err := s.Load(bad); err == nil {
		t.Error("corrupt file loaded")
	}
	empty := filepath.Join(t.TempDir(), "emptykey.json")
	_ = os.WriteFile(empty, []byte(`{"keys":[{"key":"","versions":[]}]}`), 0o644)
	if err := s.Load(empty); err == nil {
		t.Error("empty key accepted")
	}
}

// TestStorageLoadDuplicateKey is the regression test for Load accepting a
// dump that defines the same key twice: the later record used to silently
// overwrite the earlier one. Load must reject the dump, name the offending
// key, report the byte offsets of both records, and leave the target store
// untouched.
func TestStorageLoadDuplicateKey(t *testing.T) {
	dup := filepath.Join(t.TempDir(), "dup.json")
	dump := `{"keys":[` +
		`{"key":"plans/a","versions":["djE="]},` +
		`{"key":"plans/b","versions":["djE="]},` +
		`{"key":"plans/a","versions":["djI="]}` +
		`]}`
	if err := os.WriteFile(dup, []byte(dump), 0o644); err != nil {
		t.Fatal(err)
	}

	target := NewStorage()
	_, _ = target.Put("survivor", []byte("intact"))
	err := target.Load(dup)
	if err == nil {
		t.Fatal("dump with duplicate key loaded without error")
	}
	if !strings.Contains(err.Error(), `duplicate key "plans/a"`) {
		t.Errorf("error %q does not name the duplicate key", err)
	}
	// The error points at both the duplicate and the first definition. The
	// offsets must be real positions inside the dump — the duplicate record
	// starts after the first two, the original within the array head.
	first := strings.Index(dump, `{"key":"plans/a"`)
	second := strings.LastIndex(dump, `{"key":"plans/a"`)
	var dupOff, firstOff int
	if _, scanErr := fmt.Sscanf(stripPrefixTo(err.Error(), "at offset "), "%d", &dupOff); scanErr != nil {
		t.Fatalf("error %q has no duplicate offset: %v", err, scanErr)
	}
	if _, scanErr := fmt.Sscanf(stripPrefixTo(err.Error(), "first defined at offset "), "%d", &firstOff); scanErr != nil {
		t.Fatalf("error %q has no first-definition offset: %v", err, scanErr)
	}
	if dupOff < second-1 || dupOff >= len(dump) {
		t.Errorf("duplicate offset %d does not point at the third record (starts at %d)", dupOff, second)
	}
	if firstOff < first-1 || firstOff >= second {
		t.Errorf("first-definition offset %d does not point at the first record (%d..%d)", firstOff, first, second)
	}
	if v, _, ok, _ := target.Get("survivor", 0); !ok || string(v) != "intact" {
		t.Errorf("failed load clobbered the store: %q ok=%v", v, ok)
	}
	if _, _, ok, _ := target.Get("plans/a", 0); ok {
		t.Error("failed load partially applied the dump")
	}
	if _, _, ok, _ := target.Get("plans/b", 0); ok {
		t.Error("failed load partially applied the dump")
	}
}

// stripPrefixTo returns the tail of s after the first occurrence of marker.
func stripPrefixTo(s, marker string) string {
	if i := strings.Index(s, marker); i >= 0 {
		return s[i+len(marker):]
	}
	return ""
}

func TestMonitoringSubscriptions(t *testing.T) {
	g := grid.New(1)
	_ = g.AddNode(&grid.Node{ID: "n1", Hardware: grid.Hardware{Speed: 1}})
	_ = g.AddNode(&grid.Node{ID: "n2", Hardware: grid.Hardware{Speed: 1}})
	p := agent.NewPlatform()
	defer p.Shutdown()
	p.MustRegister(MonitoringName, &Monitoring{Grid: g})

	events := make(chan StatusEvent, 16)
	sub := p.MustRegister("watcher", agent.HandlerFunc(func(_ *agent.Context, msg agent.Message) {
		if ev, ok := msg.Content.(StatusEvent); ok {
			events <- ev
		}
	}))
	if _, err := sub.Call(MonitoringName, OntMonitoring, SubscribeStatus{}, time.Second); err != nil {
		t.Fatal(err)
	}

	// No change: poll produces nothing.
	reply, err := sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if n := reply.Content.(int); n != 0 {
		t.Errorf("initial poll events = %d, want 0", n)
	}

	// Fail a node: one event for n1.
	_ = g.SetNodeUp("n1", false)
	reply, _ = sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	if n := reply.Content.(int); n != 1 {
		t.Fatalf("poll events = %d, want 1", n)
	}
	select {
	case ev := <-events:
		if ev.Node != "n1" || ev.Up {
			t.Errorf("event = %+v", ev)
		}
	case <-time.After(time.Second):
		t.Fatal("no event delivered")
	}

	// Repair both state changes at once. Delivery is asynchronous, so
	// collect with a deadline rather than assuming arrival before the poll
	// reply.
	_ = g.SetNodeUp("n1", true)
	_ = g.SetNodeUp("n2", false)
	reply, _ = sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	if n := reply.Content.(int); n != 2 {
		t.Errorf("poll events = %d, want 2", n)
	}
	deadline := time.After(time.Second)
	for drained := 0; drained < 2; {
		select {
		case <-events:
			drained++
		case <-deadline:
			t.Fatalf("only %d of 2 events delivered", drained)
		}
	}

	// Unsubscribe: further changes are not delivered.
	if _, err := sub.Call(MonitoringName, OntMonitoring, UnsubscribeStatus{}, time.Second); err != nil {
		t.Fatal(err)
	}
	_ = g.SetNodeUp("n2", true)
	_, _ = sub.Call(MonitoringName, OntMonitoring, PollStatus{}, time.Second)
	select {
	case ev := <-events:
		t.Errorf("event after unsubscribe: %+v", ev)
	case <-time.After(50 * time.Millisecond):
	}
}

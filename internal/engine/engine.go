// Package engine is the durable enactment engine: the execution-service
// layer the workflow-platform literature places between the user interface
// and the coordination service. It owns the task lifecycle end-to-end —
//
//   - a bounded admission queue with priority classes, weighted fair
//     queueing across tenants (deficit round-robin within each class, see
//     internal/fairq), and backpressure (submissions beyond capacity fail
//     fast with ErrQueueFull, which the HTTP layer surfaces as 429 +
//     Retry-After);
//   - per-tenant admission quotas — max queued, max in-flight, token-bucket
//     submit rate — with distinct ErrTenantQueueFull / ErrTenantRateLimited
//     rejections and per-tenant accounting (see tenant.go);
//   - a pool of N coordinator workers draining the queue, so concurrent
//     case enactments are capped and scheduled fairly instead of spawning
//     one goroutine per request;
//   - a write-ahead task journal: append-only lifecycle records persisted
//     through the persistent storage service, with snapshot compaction
//     (see journal.go);
//   - crash recovery: Recover replays the journal, re-enqueues tasks that
//     were accepted but never started, and resumes started tasks from their
//     latest coordination checkpoint (see recover.go).
//
// The engine records engine.* metrics and per-task queue/attempt spans into
// the telemetry registry (OBSERVABILITY.md lists them all).
package engine

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/coordination"
	"repro/internal/fairq"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Typed engine errors. The HTTP layer maps them to status codes.
var (
	// ErrQueueFull signals admission backpressure: the bounded queue is at
	// capacity and the submission was rejected.
	ErrQueueFull = errors.New("engine: admission queue full")
	// ErrTenantQueueFull rejects a submission over its tenant's MaxQueued
	// quota while the shared queue still has room.
	ErrTenantQueueFull = errors.New("engine: tenant queue quota exceeded")
	// ErrTenantRateLimited rejects a submission with no token left in its
	// tenant's submit-rate bucket.
	ErrTenantRateLimited = errors.New("engine: tenant rate limited")
	// ErrUnknownTask is returned for task IDs the engine has never seen.
	ErrUnknownTask = errors.New("engine: unknown task")
	// ErrEvicted is returned for finished tasks whose record was dropped by
	// bounded retention (the journal still holds the compacted outcome).
	ErrEvicted = errors.New("engine: task record evicted")
	// ErrDuplicate rejects a submission reusing a known task ID.
	ErrDuplicate = errors.New("engine: duplicate task")
	// ErrFinished rejects cancelling a task that already reached a terminal
	// status.
	ErrFinished = errors.New("engine: task already finished")
	// ErrClosed rejects submissions to a closed engine.
	ErrClosed = errors.New("engine: closed")
)

// Priority is an admission class. Lower values drain first; within a class
// tenants share service by weighted fair queueing (a single tenant reduces
// to plain FIFO).
type Priority int

const (
	PriorityHigh Priority = iota
	PriorityNormal
	PriorityLow
	numPriorities
)

// String returns the wire name of the priority class.
func (p Priority) String() string {
	switch p {
	case PriorityHigh:
		return "high"
	case PriorityLow:
		return "low"
	default:
		return "normal"
	}
}

// ParsePriority maps a wire name to a class; the empty string means normal.
func ParsePriority(s string) (Priority, error) {
	switch s {
	case "high":
		return PriorityHigh, nil
	case "", "normal":
		return PriorityNormal, nil
	case "low":
		return PriorityLow, nil
	}
	return PriorityNormal, fmt.Errorf("engine: unknown priority %q (want high, normal, or low)", s)
}

// Task status values.
const (
	StatusQueued    = "queued"
	StatusRunning   = "running"
	StatusCompleted = "completed"
	StatusFailed    = "failed"
	StatusCancelled = "cancelled"
)

// terminal reports whether a status is final.
func terminal(status string) bool {
	return status == StatusCompleted || status == StatusFailed || status == StatusCancelled
}

// Defaults applied by New for zero Config fields.
const (
	DefaultQueueCapacity  = 256
	DefaultRetainFinished = 1024
)

// storageAPI is the slice of the storage layer the engine journals through;
// store.Store and *services.Storage both satisfy it. On durable backends
// Put returns only after the write is fsynced (group-committed).
type storageAPI interface {
	Put(key string, value []byte) (int, error)
	PutAsync(key string, value []byte) (int, error)
	Replace(key string, value []byte) (int, error)
	Get(key string, version int) (value []byte, ver int, found bool, err error)
	Keys(prefix string) []string
	Delete(key string) error
}

// Config wires an engine.
type Config struct {
	// Coordinator enacts the tasks; required.
	Coordinator *coordination.Coordinator
	// Storage persists the task journal; required.
	Storage storageAPI
	// Telemetry receives engine.* metrics and queue/attempt spans; nil
	// disables instrumentation.
	Telemetry *telemetry.Registry
	// Logger receives structured lifecycle logs (admission, attempts,
	// terminal transitions, recovery); nil means silent.
	Logger *slog.Logger
	// Workers is the coordinator worker-pool size — the cap on concurrent
	// enactments. 0 means GOMAXPROCS.
	Workers int
	// QueueCapacity bounds the admission queue (queued tasks, not running
	// ones). 0 means DefaultQueueCapacity.
	QueueCapacity int
	// RetainFinished bounds how many finished task records stay queryable;
	// older ones are evicted (lookups then return ErrEvicted). 0 means
	// DefaultRetainFinished.
	RetainFinished int
	// Tenants sets per-tenant fair-share weights and admission quotas,
	// keyed by tenant ID (the empty tenant is recorded as DefaultTenant).
	Tenants map[string]TenantConfig
	// TenantDefaults applies to tenants absent from Tenants. The zero value
	// means weight 1 and no quotas.
	TenantDefaults TenantConfig
}

// Submission is one task handed to the engine.
type Submission struct {
	Task *workflow.Task
	// Policy is the fault-tolerance policy; nil means the coordinator's
	// defaults.
	Policy *coordination.Policy
	// Priority is the admission class; the zero value is PriorityHigh, so
	// API layers should parse explicitly (ParsePriority maps "" to normal).
	Priority Priority
	// Tenant attributes the task to a submitting principal for fair
	// queueing, quota enforcement, and accounting. Empty means
	// DefaultTenant.
	Tenant string
	// Traceparent is an inbound W3C trace context (a forwarded submit, a
	// parent task). When valid, the task's root span joins that trace
	// instead of starting a fresh one.
	Traceparent string
	// RequestID is the HTTP request ID that carried the submission; it is
	// stamped on the root span and admission logs so traces, logs, and
	// responses correlate on one ID.
	RequestID string
}

// TaskStatus is a point-in-time public view of one task record.
type TaskStatus struct {
	ID        string
	Status    string
	Priority  Priority
	Tenant    string
	Seq       int64
	Attempt   int
	Submitted time.Time
	Finished  time.Time
	// QueuePosition is the 1-based position among queued tasks (all
	// classes, drain order); 0 once the task left the queue.
	QueuePosition int
	// QueueWait is the real time the task spent queued, in seconds (set
	// when it starts running).
	QueueWait float64
	Error     string
	// Reason refines a terminal status with the constraint that ended the
	// task ("budget_exceeded", "deadline_missed"); empty otherwise.
	Reason string
	// Budget, Deadline, and HardDeadline echo the case's scheduling
	// constraints (from the durable envelope, so they are visible from
	// admission on, not only once a report exists).
	Budget       float64
	Deadline     float64
	HardDeadline bool
	Report       *coordination.Report
	Policy       coordination.Policy
}

// Stats is the queue/worker snapshot behind GET /api/v1/queue.
type Stats struct {
	Capacity      int            `json:"capacity"`
	Depth         int            `json:"depth"`
	DepthByClass  map[string]int `json:"depthByClass"`
	DepthByTenant map[string]int `json:"depthByTenant,omitempty"`
	Tenants       int            `json:"tenants"`
	Workers       int            `json:"workers"`
	Busy          int            `json:"busy"`
	Running       int            `json:"running"`
	Accepted      int64          `json:"accepted"`
	Rejected      int64          `json:"rejected"`
	RetryAfterSec int            `json:"retryAfterSec"`
}

// record is the engine's internal per-task state.
type record struct {
	id        string
	seq       int64
	priority  Priority
	tenant    string
	status    string
	attempt   int
	submitted time.Time
	started   time.Time
	finished  time.Time
	queueWait float64
	err       string
	reason    string
	report    *coordination.Report
	policy    coordination.Policy
	env       *TaskEnvelope
	// task is the live submission, kept so a fresh run does not have to
	// decode the envelope back into a task; recovered records leave it nil
	// and rebuild from env (the only copy that survived the crash).
	task *workflow.Task
	// admitting marks a record whose write-ahead journal append is still in
	// flight (Submit holds no lock across the fsync); it is reserved in
	// e.records but not yet in the queue. preempt asks the admitting Submit
	// to finish the task as cancelled instead of enqueueing it (set by a
	// Cancel that raced the admission).
	admitting bool
	preempt   bool
	// resume holds the checkpoint snapshot a recovered task continues from;
	// nil for fresh runs.
	resume *coordination.CheckpointData
	// runCtx/cancel scope the running enactment; nil unless running.
	runCtx context.Context
	cancel context.CancelFunc
	// Trace state: the task's trace, its root span context, and the pending
	// end funcs for the root and queue_wait duration spans. All are set
	// before the record becomes poppable (Submit before fq.Push, or
	// enqueueRecovered) and are nil-safe no-ops when telemetry is off.
	trace    *telemetry.TaskTrace
	rootCtx  telemetry.SpanContext
	endRoot  func(string) float64
	endQueue func(string) float64
}

// Engine is the durable enactment engine. Create with New, then Start the
// worker pool; Close stops it.
type Engine struct {
	cfg   Config
	coord *coordination.Coordinator
	store storageAPI
	tel   *telemetry.Registry
	log   *slog.Logger

	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	fq      *fairq.Queue[*record]
	tenants map[string]*tenantState
	queued  int
	records map[string]*record
	// finished is the eviction ring: finished task IDs in completion order.
	finished []string
	evicted  map[string]bool
	closed   bool
	seq      int64

	epoch   time.Time
	wg      sync.WaitGroup
	started atomic.Bool
	busy    atomic.Int64
	running atomic.Int64

	mAccepted, mRejected                 *telemetry.Counter
	mCompleted, mFailed, mCancelled      *telemetry.Counter
	mRequeued, mResumed, mRestarted      *telemetry.Counter
	mJournalRecords, mJournalCompactions *telemetry.Counter
	gDepth, gBusy                        *telemetry.Gauge
	hWait, hRun                          *telemetry.Histogram
	hStageWait, hStageEnact              *telemetry.Histogram
	hStageJournal                        *telemetry.Histogram
}

// New builds an engine over a coordinator and the persistent storage
// service. Call Start to spin up the worker pool.
func New(cfg Config) (*Engine, error) {
	if cfg.Coordinator == nil || cfg.Storage == nil {
		return nil, fmt.Errorf("engine: coordinator and storage are required")
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.QueueCapacity <= 0 {
		cfg.QueueCapacity = DefaultQueueCapacity
	}
	if cfg.RetainFinished <= 0 {
		cfg.RetainFinished = DefaultRetainFinished
	}
	if cfg.Logger == nil {
		cfg.Logger = telemetry.NopLogger()
	}
	ctx, cancel := context.WithCancel(context.Background())
	e := &Engine{
		cfg:        cfg,
		coord:      cfg.Coordinator,
		store:      cfg.Storage,
		tel:        cfg.Telemetry,
		log:        cfg.Logger,
		baseCtx:    ctx,
		baseCancel: cancel,
		records:    make(map[string]*record),
		tenants:    make(map[string]*tenantState),
		evicted:    make(map[string]bool),
		epoch:      time.Now(),
	}
	e.fq = fairq.New[*record](int(numPriorities), e.weight)
	e.cond = sync.NewCond(&e.mu)
	tel := cfg.Telemetry
	e.mAccepted = tel.Counter("engine.admission.accepted")
	e.mRejected = tel.Counter("engine.admission.rejected")
	e.mCompleted = tel.Counter("engine.tasks.completed")
	e.mFailed = tel.Counter("engine.tasks.failed")
	e.mCancelled = tel.Counter("engine.tasks.cancelled")
	e.mRequeued = tel.Counter("engine.recovery.requeued")
	e.mResumed = tel.Counter("engine.recovery.resumed")
	e.mRestarted = tel.Counter("engine.recovery.restarted")
	e.mJournalRecords = tel.Counter("engine.journal.records")
	e.mJournalCompactions = tel.Counter("engine.journal.compactions")
	e.gDepth = tel.Gauge("engine.queue.depth")
	e.gBusy = tel.Gauge("engine.workers.busy")
	e.hWait = tel.Histogram("engine.queue.wait.seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60, 300})
	e.hRun = tel.Histogram("engine.run.seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60, 300})
	// Stage latency histograms are derived from span durations, so metrics
	// and trace trees attribute the same lifecycle stages (exemplars carry
	// the trace ID of the latest observation).
	e.hStageWait = tel.Histogram("trace.stage.queue_wait.seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60, 300})
	e.hStageEnact = tel.Histogram("trace.stage.enact.seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60, 300})
	e.hStageJournal = tel.Histogram("trace.stage.journal_commit.seconds", []float64{0.0001, 0.001, 0.01, 0.1, 1, 10})
	return e, nil
}

// Start launches the worker pool. Idempotent.
func (e *Engine) Start() {
	if e.started.Swap(true) {
		return
	}
	e.wg.Add(e.cfg.Workers)
	for i := 0; i < e.cfg.Workers; i++ {
		go e.worker()
	}
}

// Close stops the engine: no further admissions, in-flight enactments are
// cancelled, and the worker pool drains. Queued tasks that never started are
// cancelled too (their journals record it, so a restart does not resurrect
// deliberately stopped work).
func (e *Engine) Close() {
	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return
	}
	e.closed = true
	drained := e.fq.Drain()
	for _, rec := range drained {
		e.tenantLocked(rec.tenant).queued--
	}
	e.queued = 0
	e.cond.Broadcast()
	e.mu.Unlock()

	e.baseCancel()
	for _, rec := range drained {
		e.finish(rec, StatusCancelled, nil, "engine closed before the task started")
	}
	e.gDepth.Set(0)
	if e.started.Load() {
		e.wg.Wait()
	}
}

// Workers returns the configured worker-pool size.
func (e *Engine) Workers() int { return e.cfg.Workers }

// Ready reports whether the engine is accepting work: the worker pool has
// started and Close has not been called. The /readyz probe serves this.
func (e *Engine) Ready() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.started.Load() && !e.closed
}

// Submit admits a task: the accepted record is journaled (write-ahead), the
// task enters its tenant's FIFO within its priority class, and the returned
// status carries the queue position. Fails fast with ErrQueueFull beyond the
// shared capacity, ErrTenantQueueFull / ErrTenantRateLimited beyond the
// tenant's quotas, ErrDuplicate for reused IDs, or the task's own validation
// error.
func (e *Engine) Submit(sub Submission) (TaskStatus, error) {
	if sub.Task == nil {
		return TaskStatus{}, fmt.Errorf("engine: nil task")
	}
	if err := sub.Task.Validate(); err != nil {
		return TaskStatus{}, err
	}
	if err := sub.Policy.Validate(); err != nil {
		return TaskStatus{}, err
	}
	if sub.Priority < PriorityHigh || sub.Priority >= numPriorities {
		return TaskStatus{}, fmt.Errorf("engine: invalid priority %d", sub.Priority)
	}
	env, err := envelope(sub.Task, sub.Policy)
	if err != nil {
		return TaskStatus{}, err
	}
	resolved := e.coord.ResolvePolicy(sub.Policy)

	e.mu.Lock()
	if e.closed {
		e.mu.Unlock()
		return TaskStatus{}, ErrClosed
	}
	id := sub.Task.ID
	if _, dup := e.records[id]; dup || e.evicted[id] {
		e.mu.Unlock()
		return TaskStatus{}, fmt.Errorf("%w: %s", ErrDuplicate, id)
	}
	tenant := canonicalTenant(sub.Tenant)
	ts := e.tenantLocked(tenant)
	if e.queued >= e.cfg.QueueCapacity {
		ts.rejectedQueue++
		ts.mRejectedQueue.Inc()
		e.mu.Unlock()
		e.mRejected.Inc()
		e.log.Warn("task rejected: admission queue full",
			slog.String("task", id), slog.Int("capacity", e.cfg.QueueCapacity))
		return TaskStatus{}, fmt.Errorf("%w: capacity %d", ErrQueueFull, e.cfg.QueueCapacity)
	}
	if ts.cfg.MaxQueued > 0 && ts.queued >= ts.cfg.MaxQueued {
		ts.rejectedQueue++
		ts.mRejectedQueue.Inc()
		e.mu.Unlock()
		e.mRejected.Inc()
		e.log.Warn("task rejected: tenant queue quota exceeded",
			slog.String("task", id), slog.String("tenant", tenant),
			slog.Int("maxQueued", ts.cfg.MaxQueued))
		return TaskStatus{}, fmt.Errorf("%w: tenant %s at %d queued", ErrTenantQueueFull, tenant, ts.cfg.MaxQueued)
	}
	// Rate is checked last so a submission doomed by a queue bound does not
	// burn a token.
	if ts.bucket != nil && !ts.bucket.Allow(e.now()) {
		ts.rejectedRate++
		ts.mRejectedRate.Inc()
		e.mu.Unlock()
		e.mRejected.Inc()
		e.log.Warn("task rejected: tenant rate limited",
			slog.String("task", id), slog.String("tenant", tenant),
			slog.Float64("ratePerSec", ts.cfg.RatePerSec))
		return TaskStatus{}, fmt.Errorf("%w: tenant %s over %g/s", ErrTenantRateLimited, tenant, ts.cfg.RatePerSec)
	}
	e.seq++
	rec := &record{
		id:        id,
		seq:       e.seq,
		priority:  sub.Priority,
		tenant:    tenant,
		status:    StatusQueued,
		admitting: true,
		submitted: time.Now(),
		policy:    resolved,
		env:       env,
		task:      sub.Task,
	}
	// Reserve the ID and the queue slot, then release the lock for the
	// durable append: concurrent admissions must not serialize behind one
	// fsync — unlocked, they coalesce into one group-commit batch.
	e.records[id] = rec
	e.queued++
	ts.queued++
	e.mu.Unlock()

	// Open the distributed trace: the root span covers admission through the
	// terminal transition, joining an inbound traceparent (forwarded submit,
	// parent task) when one was carried in.
	tr := e.tel.TaskTrace(id)
	var rootAttrs map[string]string
	if sub.RequestID != "" {
		rootAttrs = map[string]string{"request.id": sub.RequestID}
	}
	rec.trace = tr
	rec.rootCtx, rec.endRoot = tr.StartRoot("task", id, sub.Traceparent, rootAttrs)

	// Write-ahead: the accepted record is durable before the task is
	// visible in the queue, so a crash between here and the first worker
	// pickup still re-enqueues it on recovery.
	_, endJournal := tr.Begin(rec.rootCtx, "journal_commit", "accepted")
	_, jerr := e.journalAppend(JournalRecord{
		Event: EventAccepted, TaskID: id, Seq: rec.seq,
		Priority: int(rec.priority), Tenant: rec.tenant, Task: env,
	})
	e.hStageJournal.ObserveExemplar(endJournal("write-ahead accepted record"), rec.rootCtx.TraceID)
	// The queue_wait span opens here — before the record becomes poppable —
	// and ends when a worker dequeues it in run().
	_, rec.endQueue = tr.Begin(rec.rootCtx, "queue_wait", "")

	e.mu.Lock()
	rec.admitting = false
	if jerr != nil {
		// The acceptance never became durable: release the reservation and
		// surface the storage failure. (Close zeroes e.queued when it drains
		// the queue, so guard the shared counter.)
		delete(e.records, id)
		if e.queued > 0 {
			e.queued--
		}
		ts.queued--
		ts.gQueued.Set(float64(ts.queued))
		e.mu.Unlock()
		e.mRejected.Inc()
		rec.endRoot("journal append failed: " + jerr.Error())
		e.log.Error("task rejected: journal append failed",
			slog.String("task", id), slog.String("error", jerr.Error()))
		return TaskStatus{}, jerr
	}
	if rec.preempt || e.closed {
		// A Cancel (or Close) raced the admission. The accepted record is
		// durable, so finish the task as cancelled — the terminal record
		// keeps recovery from resurrecting it.
		if e.queued > 0 {
			e.queued--
		}
		ts.queued--
		ts.gQueued.Set(float64(ts.queued))
		closed := e.closed && !rec.preempt
		e.mu.Unlock()
		reason := "cancelled during admission"
		if closed {
			reason = "engine closed before the task started"
		}
		e.finish(rec, StatusCancelled, nil, reason)
		if closed {
			return TaskStatus{}, ErrClosed
		}
		st, _ := e.Task(id)
		return st, nil
	}
	e.fq.Push(int(rec.priority), tenant, rec)
	ts.accepted++
	ts.mAccepted.Inc()
	ts.gQueued.Set(float64(ts.queued))
	pos := e.positionLocked(rec)
	depth := e.queued
	e.cond.Signal()
	status := e.statusLocked(rec)
	e.mu.Unlock()

	e.mAccepted.Inc()
	e.gDepth.Set(float64(depth))
	tr.Span("queue", "", fmt.Sprintf("admitted at position %d (%s priority)", pos, rec.priority))
	logAttrs := []any{
		slog.String("task", id), slog.String("priority", rec.priority.String()),
		slog.Int("position", pos), slog.Int("depth", depth),
	}
	if sub.RequestID != "" {
		logAttrs = append(logAttrs, slog.String("requestId", sub.RequestID))
	}
	if rec.rootCtx.Valid() {
		logAttrs = append(logAttrs, slog.String("traceId", rec.rootCtx.TraceID))
	}
	e.log.Info("task admitted", logAttrs...)
	return status, nil
}

// enqueueRecovered re-admits a recovered task, bypassing the capacity check:
// it was accepted in a previous life, so the admission promise stands even
// if the queue is momentarily over capacity.
func (e *Engine) enqueueRecovered(rec *record) {
	// Trace state did not survive the crash, so a recovered task gets a
	// fresh local root (marked as recovered) rather than rejoining the
	// original distributed trace.
	tr := e.tel.TaskTrace(rec.id)
	rec.trace = tr
	rec.rootCtx, rec.endRoot = tr.StartRoot("task", rec.id, "", map[string]string{"recovered": "true"})
	_, rec.endQueue = tr.Begin(rec.rootCtx, "queue_wait", "")
	e.mu.Lock()
	rec.status = StatusQueued
	rec.tenant = canonicalTenant(rec.tenant)
	e.records[rec.id] = rec
	if rec.seq > e.seq {
		e.seq = rec.seq
	}
	// Recovery feeds tasks back in journal-sequence order (Recover sorts by
	// seq), so each tenant's FIFO comes back in its original order.
	e.fq.Push(int(rec.priority), rec.tenant, rec)
	e.queued++
	ts := e.tenantLocked(rec.tenant)
	ts.queued++
	ts.gQueued.Set(float64(ts.queued))
	depth := e.queued
	e.cond.Signal()
	e.mu.Unlock()
	e.gDepth.Set(float64(depth))
}

// next blocks until a runnable task is available or the engine closes; the
// fair queue picks the next tenant (highest non-empty priority class,
// deficit round-robin within it), skipping tenants at their in-flight cap,
// and the popped record transitions to running.
func (e *Engine) next() *record {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if rec, ok := e.fq.Pop(e.eligible); ok {
			e.queued--
			rec.status = StatusRunning
			rec.attempt++
			rec.started = time.Now()
			rec.queueWait = rec.started.Sub(rec.submitted).Seconds()
			ts := e.tenantLocked(rec.tenant)
			ts.queued--
			ts.running++
			ts.waitSum += rec.queueWait
			ts.waitCount++
			ts.hWait.Observe(rec.queueWait)
			ts.gQueued.Set(float64(ts.queued))
			ts.gRunning.Set(float64(ts.running))
			ctx, cancel := context.WithCancel(e.baseCtx)
			rec.cancel = cancel
			rec.runCtx = ctx
			e.gDepth.Set(float64(e.queued))
			return rec
		}
		if e.closed {
			return nil
		}
		// Either the queue is empty or every queued tenant is at its
		// in-flight cap; finish() broadcasts when capacity frees up.
		e.cond.Wait()
	}
}

// worker is one coordinator worker: it drains the queue until Close.
func (e *Engine) worker() {
	defer e.wg.Done()
	for {
		rec := e.next()
		if rec == nil {
			return
		}
		e.run(rec)
	}
}

// run executes one attempt of a task: journal "started", enact (fresh or
// resumed from checkpoint), then journal the terminal event and compact.
func (e *Engine) run(rec *record) {
	e.busy.Add(1)
	e.running.Add(1)
	e.gBusy.Set(float64(e.busy.Load()))
	defer func() {
		e.busy.Add(-1)
		e.running.Add(-1)
		e.gBusy.Set(float64(e.busy.Load()))
	}()

	// The started record rides the log asynchronously: its durability is not
	// load-bearing (a crash mid-run re-enqueues the task from the accepted
	// record either way), so the worker should not stall on an fsync before
	// the enactment even begins. Ordering against the terminal snapshot is
	// preserved — this worker enqueues both, and batches flush FIFO.
	if err := e.journalAppendAsync(JournalRecord{Event: EventStarted, TaskID: rec.id, Attempt: rec.attempt}); err != nil {
		e.log.Error("journal append failed for started event",
			slog.String("task", rec.id), slog.String("error", err.Error()))
	}
	e.hWait.Observe(rec.queueWait)
	if rec.endQueue != nil {
		wait := rec.endQueue(fmt.Sprintf("dequeued for attempt %d", rec.attempt))
		e.hStageWait.ObserveExemplar(wait, rec.rootCtx.TraceID)
		rec.endQueue = nil
	}
	rec.trace.Span("attempt", "", fmt.Sprintf("attempt %d after %.3fs queued", rec.attempt, rec.queueWait))
	e.log.Info("enactment attempt started",
		slog.String("task", rec.id), slog.Int("attempt", rec.attempt),
		slog.Float64("queueWaitSec", rec.queueWait))

	// The enact span scopes the whole coordinator run; its context rides
	// rec.runCtx so scheduling and planning spans nest under it.
	enactCtx, endEnact := rec.trace.Begin(rec.rootCtx, "enact", "")
	ctx := telemetry.ContextWithSpan(rec.runCtx, enactCtx)
	var report *coordination.Report
	var err error
	if rec.resume != nil {
		report, err = e.coord.ResumeContext(ctx, rec.resume, rec.env.Policy)
	} else {
		task := rec.task
		if task == nil { // recovered: rebuild from the durable envelope
			task, err = rec.env.task()
		}
		if err == nil {
			report, err = e.coord.RunTaskContext(ctx, task, rec.env.Policy)
		}
	}
	e.hRun.Observe(time.Since(rec.started).Seconds())
	e.hStageEnact.ObserveExemplar(endEnact(fmt.Sprintf("attempt %d", rec.attempt)), rec.rootCtx.TraceID)

	status := StatusCompleted
	switch {
	case report != nil && report.Cancelled:
		status = StatusCancelled
	case err != nil:
		status = StatusFailed
	}
	errText := ""
	if err != nil {
		errText = err.Error()
	}
	e.finishReason(rec, status, coordination.ConstraintReason(err), report, errText)
}

// finish records a terminal transition: record update, retention eviction,
// metrics, and one journal write. The terminal snapshot — carrying the
// status, attempt, and error — IS the terminal record; compacting straight
// to it costs a single durable wait where a terminal append followed by a
// Delete+Put compaction used to cost three.
func (e *Engine) finish(rec *record, status string, report *coordination.Report, errText string) {
	e.finishReason(rec, status, "", report, errText)
}

// finishReason is finish with a terminal constraint reason (budget_exceeded,
// deadline_missed) riding along into the snapshot and the public view.
func (e *Engine) finishReason(rec *record, status, reason string, report *coordination.Report, errText string) {
	_, endCompact := rec.trace.Begin(rec.rootCtx, "journal_commit", "terminal")
	if err := e.compact(JournalRecord{
		TaskID: rec.id, Seq: rec.seq, Attempt: rec.attempt,
		Priority: int(rec.priority), Tenant: rec.tenant,
		Status: status, Error: errText, Reason: reason,
	}); err != nil {
		e.log.Error("journal compaction failed",
			slog.String("task", rec.id), slog.String("error", err.Error()))
	}
	e.hStageJournal.ObserveExemplar(endCompact("terminal snapshot"), rec.rootCtx.TraceID)
	if rec.endRoot != nil {
		rec.endRoot(status)
		rec.endRoot = nil
	}

	e.mu.Lock()
	ts := e.tenantLocked(rec.tenant)
	if rec.status == StatusRunning {
		ts.running--
		ts.gRunning.Set(float64(ts.running))
		run := time.Since(rec.started).Seconds()
		ts.runSum += run
		ts.runCount++
		ts.hRun.Observe(run)
	}
	rec.status = status
	rec.err = errText
	rec.reason = reason
	rec.report = report
	rec.finished = time.Now()
	rec.cancel = nil
	rec.runCtx = nil
	if report != nil && report.TotalCost > 0 {
		// Per-tenant spend accrues at the terminal transition, so a crash
		// never double-charges: replayed work re-derives its cost from the
		// resumed report, which already starts from the checkpointed spend.
		ts.spent += report.TotalCost
		ts.gSpent.Set(ts.spent)
	}
	switch status {
	case StatusCompleted:
		ts.completed++
		ts.mCompleted.Inc()
	case StatusFailed:
		ts.failed++
		ts.mFailed.Inc()
	case StatusCancelled:
		ts.cancelled++
		ts.mCancelled.Inc()
	}
	e.finished = append(e.finished, rec.id)
	for len(e.finished) > e.cfg.RetainFinished {
		oldest := e.finished[0]
		e.finished = e.finished[1:]
		delete(e.records, oldest)
		e.evicted[oldest] = true
	}
	// Wake workers parked because this tenant was at its in-flight cap.
	e.cond.Broadcast()
	e.mu.Unlock()

	switch status {
	case StatusCompleted:
		e.mCompleted.Inc()
	case StatusFailed:
		e.mFailed.Inc()
	case StatusCancelled:
		e.mCancelled.Inc()
	}
	attrs := []any{slog.String("task", rec.id), slog.String("status", status), slog.Int("attempt", rec.attempt)}
	if errText != "" {
		attrs = append(attrs, slog.String("error", errText))
	}
	if status == StatusFailed {
		e.log.Warn("task finished", attrs...)
	} else {
		e.log.Info("task finished", attrs...)
	}
}

// NoteCheckpoint is the coordination.Config.OnCheckpoint hook: it journals
// checkpoint progress for tasks the engine owns (direct coordinator use
// outside the engine is ignored).
func (e *Engine) NoteCheckpoint(taskID string, version int) {
	e.mu.Lock()
	rec := e.records[taskID]
	owned := rec != nil && rec.status == StatusRunning
	e.mu.Unlock()
	if !owned {
		return
	}
	ver, err := e.journalAppend(JournalRecord{Event: EventCheckpointed, TaskID: taskID, CheckpointVersion: version})
	if err != nil {
		e.log.Error("journal append failed for checkpoint event",
			slog.String("task", taskID), slog.String("error", err.Error()))
		return
	}
	if ver > maxJournalVersions {
		if err := e.compact(JournalRecord{
			TaskID: taskID, Seq: rec.seq, Attempt: rec.attempt,
			Priority: int(rec.priority), Tenant: rec.tenant,
			Status: StatusRunning, CheckpointVersion: version, Task: rec.env,
		}); err != nil {
			e.log.Error("journal compaction failed",
				slog.String("task", taskID), slog.String("error", err.Error()))
		}
	}
}

// Cancel stops a task. Queued tasks are cancelled immediately (removed from
// the queue, terminal journal record written); running tasks get their
// context cancelled and unwind asynchronously. Returns the resulting status
// ("cancelled" or "cancelling"), ErrFinished for terminal tasks, ErrEvicted
// or ErrUnknownTask otherwise.
func (e *Engine) Cancel(id string) (string, error) {
	e.mu.Lock()
	rec := e.records[id]
	if rec == nil {
		evicted := e.evicted[id]
		e.mu.Unlock()
		if evicted {
			return "", ErrEvicted
		}
		return "", ErrUnknownTask
	}
	switch rec.status {
	case StatusQueued:
		if rec.admitting {
			// The admission's durable append is still in flight; ask it to
			// finish the task as cancelled instead of enqueueing.
			rec.preempt = true
			e.mu.Unlock()
			return StatusCancelled, nil
		}
		if e.fq.Remove(int(rec.priority), rec.tenant, func(r *record) bool { return r == rec }) {
			e.queued--
			ts := e.tenantLocked(rec.tenant)
			ts.queued--
			ts.gQueued.Set(float64(ts.queued))
		}
		depth := e.queued
		e.mu.Unlock()
		e.gDepth.Set(float64(depth))
		e.finish(rec, StatusCancelled, nil, "cancelled while queued")
		return StatusCancelled, nil
	case StatusRunning:
		cancel := rec.cancel
		e.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return "cancelling", nil
	default:
		e.mu.Unlock()
		return "", fmt.Errorf("%w: %s is %s", ErrFinished, id, rec.status)
	}
}

// Task returns the public view of one task, ErrEvicted for records dropped
// by retention, or ErrUnknownTask.
func (e *Engine) Task(id string) (TaskStatus, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec := e.records[id]
	if rec == nil {
		if e.evicted[id] {
			return TaskStatus{}, ErrEvicted
		}
		return TaskStatus{}, ErrUnknownTask
	}
	return e.statusLocked(rec), nil
}

// Tasks returns every live record in admission order.
func (e *Engine) Tasks() []TaskStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]TaskStatus, 0, len(e.records))
	for _, rec := range e.records {
		out = append(out, e.statusLocked(rec))
	}
	sortStatuses(out)
	return out
}

// Stats snapshots the queue and worker pool.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	byClass := make(map[string]int, numPriorities)
	for p := Priority(0); p < numPriorities; p++ {
		byClass[p.String()] = e.fq.ClassLen(int(p))
	}
	byTenant := e.fq.DepthByTenant()
	tenants := len(e.tenants)
	depth := e.queued
	e.mu.Unlock()
	busy := int(e.busy.Load())
	return Stats{
		Capacity:      e.cfg.QueueCapacity,
		Depth:         depth,
		DepthByClass:  byClass,
		DepthByTenant: byTenant,
		Tenants:       tenants,
		Workers:       e.cfg.Workers,
		Busy:          busy,
		Running:       int(e.running.Load()),
		Accepted:      e.mAccepted.Value(),
		Rejected:      e.mRejected.Value(),
		RetryAfterSec: e.retryAfterSeconds(depth),
	}
}

// RetryAfterSeconds estimates how long a rejected client should wait before
// resubmitting: the mean observed run time times the queue backlog per
// worker, clamped to [1, 60] seconds.
func (e *Engine) RetryAfterSeconds() int {
	e.mu.Lock()
	depth := e.queued
	e.mu.Unlock()
	return e.retryAfterSeconds(depth)
}

func (e *Engine) retryAfterSeconds(depth int) int {
	mean := 0.1
	if n := e.hRun.Count(); n > 0 {
		mean = e.hRun.Sum() / float64(n)
	}
	est := int(mean * float64(depth+1) / float64(e.cfg.Workers))
	if est < 1 {
		est = 1
	}
	if est > 60 {
		est = 60
	}
	return est
}

// statusLocked builds the public view; caller holds e.mu.
func (e *Engine) statusLocked(rec *record) TaskStatus {
	s := TaskStatus{
		ID:        rec.id,
		Status:    rec.status,
		Priority:  rec.priority,
		Tenant:    rec.tenant,
		Seq:       rec.seq,
		Attempt:   rec.attempt,
		Submitted: rec.submitted,
		Finished:  rec.finished,
		QueueWait: rec.queueWait,
		Error:     rec.err,
		Reason:    rec.reason,
		Report:    rec.report,
		Policy:    rec.policy,
	}
	if rec.env != nil {
		s.Budget = rec.env.Budget
		s.Deadline = rec.env.Deadline
		s.HardDeadline = rec.env.HardDeadline
	}
	if rec.status == StatusQueued && !rec.admitting {
		s.QueuePosition = e.positionLocked(rec)
	}
	return s
}

// positionLocked returns a queued record's 1-based drain position across all
// classes (an estimate under multi-tenant interleaving, exact for a single
// tenant); caller holds e.mu.
func (e *Engine) positionLocked(rec *record) int {
	return e.fq.Position(int(rec.priority), rec.tenant, func(r *record) bool { return r == rec })
}

// sortStatuses orders by admission sequence (insertion sort; listings are
// small and mostly sorted already).
func sortStatuses(s []TaskStatus) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].Seq > s[j].Seq; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}

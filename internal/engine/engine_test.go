// Engine behavior tests. They live in an external test package so they can
// build full core.Environment instances (core wires the engine, so an
// in-package test would be an import cycle).
package engine_test

import (
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// forkPDL is the short two-stage case study excerpt the tests enact: one
// density map, then two parallel reconstructions.
const forkPDL = `BEGIN,
  POD(D1, D7 -> D8);
  {FORK
    {P3DR(D2, D7, D8 -> D9)}
    {P3DR(D3, D7, D8 -> D10)}
  JOIN},
END`

// forkActivities is how many end-user activities forkPDL enacts.
const forkActivities = 3

func forkTask(t testing.TB, id string) *workflow.Task {
	t.Helper()
	p, err := pdl.ParseProcess(id, forkPDL)
	if err != nil {
		t.Fatal(err)
	}
	c := workflow.NewCase(id, "engine test "+id)
	for _, d := range virolab.InitialData() {
		c.AddData(d)
	}
	c.Goal = workflow.NewGoal(`G.Classification = "3D Model"`)
	return &workflow.Task{ID: id, Name: c.Name, Case: c, Process: p}
}

// newEnv builds an environment with the virolab catalog and cheap planner
// settings; mod tweaks the options (workers, queue capacity, hooks).
func newEnv(t testing.TB, mod func(*core.Options)) *core.Environment {
	t.Helper()
	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	opts := core.Options{Catalog: virolab.Catalog(), Planner: params}
	if mod != nil {
		mod(&opts)
	}
	env, err := core.NewEnvironment(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(env.Close)
	return env
}

// waitTerminal polls until the task reaches a terminal status.
func waitTerminal(t *testing.T, eng *engine.Engine, id string) engine.TaskStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for {
		st, err := eng.Task(id)
		if err != nil {
			t.Fatalf("task %s: %v", id, err)
		}
		switch st.Status {
		case engine.StatusCompleted, engine.StatusFailed, engine.StatusCancelled:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("task %s stuck in %q", id, st.Status)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// onceClose returns a closer for gate that is safe to call twice (tests
// close it mid-test and again in cleanup).
func onceClose(ch chan struct{}) func() {
	var once sync.Once
	return func() { once.Do(func() { close(ch) }) }
}

// gateHook returns a PostProcess hook that blocks every activity on the gate
// channel and closes started on the first one (the worker has picked a task
// up).
func gateHook(started chan<- struct{}, gate <-chan struct{}) func(*workflow.Activity, []*workflow.DataItem, int) {
	first := make(chan struct{}, 1)
	return func(*workflow.Activity, []*workflow.DataItem, int) {
		select {
		case first <- struct{}{}:
			close(started)
		default:
		}
		<-gate
	}
}

// TestBackpressure fills the bounded queue behind a blocked single worker:
// the overflow submission fails fast with ErrQueueFull and the rejection
// counter moves, while every accepted task completes once the gate opens.
func TestBackpressure(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	hook := gateHook(started, gate)
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.QueueCapacity = 2
		opts.PostProcess = hook
	})
	t.Cleanup(open)
	eng := env.Engine

	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "B"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}
	for _, id := range []string{"Q1", "Q2"} {
		st, err := eng.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal})
		if err != nil {
			t.Fatal(err)
		}
		if st.Status != engine.StatusQueued || st.QueuePosition == 0 {
			t.Fatalf("submission %s = %+v", id, st)
		}
	}
	_, err := eng.Submit(engine.Submission{Task: forkTask(t, "OVER"), Priority: engine.PriorityNormal})
	if !errors.Is(err, engine.ErrQueueFull) {
		t.Fatalf("overflow submission err = %v, want ErrQueueFull", err)
	}
	snap := env.Telemetry.Snapshot()
	if snap.Counters["engine.admission.rejected"] != 1 {
		t.Errorf("rejected counter = %d, want 1", snap.Counters["engine.admission.rejected"])
	}
	if stats := eng.Stats(); stats.Depth != 2 || stats.Capacity != 2 || stats.Rejected != 1 {
		t.Errorf("stats = %+v", stats)
	}
	if eng.RetryAfterSeconds() < 1 {
		t.Errorf("RetryAfterSeconds = %d, want >= 1", eng.RetryAfterSeconds())
	}

	open()
	for _, id := range []string{"B", "Q1", "Q2"} {
		if st := waitTerminal(t, eng, id); st.Status != engine.StatusCompleted {
			t.Errorf("task %s = %+v", id, st)
		}
	}
	if _, err := eng.Task("OVER"); !errors.Is(err, engine.ErrUnknownTask) {
		t.Errorf("rejected task lookup err = %v, want ErrUnknownTask", err)
	}
}

// TestWorkerCap holds every enactment at its first activity and checks that
// concurrent enactments sit exactly at the worker count — never above — with
// the rest of the burst queued. Run under -race in `make check`.
func TestWorkerCap(t *testing.T) {
	const workers = 2
	const burst = 6
	started := make(chan struct{})
	gate := make(chan struct{})
	hook := gateHook(started, gate)
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = workers
		opts.PostProcess = hook
	})
	t.Cleanup(open)
	eng := env.Engine

	ids := []string{"W1", "W2", "W3", "W4", "W5", "W6"}
	for _, id := range ids {
		if _, err := eng.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal}); err != nil {
			t.Fatal(err)
		}
	}
	// Wait for the pool to saturate, then watch for a while: Running must
	// reach the cap and never exceed it.
	deadline := time.Now().Add(30 * time.Second)
	for {
		if s := eng.Stats(); s.Running == workers && s.Depth == burst-workers {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %+v", eng.Stats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	for i := 0; i < 50; i++ {
		if s := eng.Stats(); s.Running > workers || s.Busy > workers {
			t.Fatalf("concurrent enactments exceed worker cap: %+v", s)
		}
		time.Sleep(time.Millisecond)
	}

	open()
	for _, id := range ids {
		if st := waitTerminal(t, eng, id); st.Status != engine.StatusCompleted {
			t.Errorf("task %s = %+v", id, st)
		}
	}
}

// TestPriorityOrdering queues one task per class behind a blocked worker and
// checks the drain order: high, then normal, then low — regardless of
// submission order.
func TestPriorityOrdering(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	hook := gateHook(started, gate)
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.PostProcess = hook
	})
	t.Cleanup(open)
	eng := env.Engine

	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "B"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}
	// Submit in worst-case order: low first, high last.
	low, err := eng.Submit(engine.Submission{Task: forkTask(t, "L"), Priority: engine.PriorityLow})
	if err != nil {
		t.Fatal(err)
	}
	norm, err := eng.Submit(engine.Submission{Task: forkTask(t, "N"), Priority: engine.PriorityNormal})
	if err != nil {
		t.Fatal(err)
	}
	high, err := eng.Submit(engine.Submission{Task: forkTask(t, "H"), Priority: engine.PriorityHigh})
	if err != nil {
		t.Fatal(err)
	}
	// Each submission saw itself at the head of its class at admission time.
	if high.QueuePosition != 1 || norm.QueuePosition != 1 || low.QueuePosition != 1 {
		t.Errorf("admission positions H=%d N=%d L=%d, want 1 1 1",
			high.QueuePosition, norm.QueuePosition, low.QueuePosition)
	}
	// With all three queued, positions reflect the drain order.
	for want, id := range map[int]string{1: "H", 2: "N", 3: "L"} {
		st, err := eng.Task(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.QueuePosition != want {
			t.Errorf("task %s at position %d, want %d", id, st.QueuePosition, want)
		}
	}

	open()
	var finished [3]time.Time
	for i, id := range []string{"H", "N", "L"} {
		st := waitTerminal(t, eng, id)
		if st.Status != engine.StatusCompleted {
			t.Fatalf("task %s = %+v", id, st)
		}
		finished[i] = st.Finished
	}
	if finished[0].After(finished[1]) || finished[1].After(finished[2]) {
		t.Errorf("drain order wrong: H=%v N=%v L=%v", finished[0], finished[1], finished[2])
	}
}

// TestCancelQueued cancels a task that is still waiting in the queue: the
// cancellation is immediate, terminal, and journaled.
func TestCancelQueued(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	hook := gateHook(started, gate)
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.PostProcess = hook
	})
	t.Cleanup(open)
	eng := env.Engine

	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "B"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "Q"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	result, err := eng.Cancel("Q")
	if err != nil || result != engine.StatusCancelled {
		t.Fatalf("cancel queued = %q, %v", result, err)
	}
	st, err := eng.Task("Q")
	if err != nil || st.Status != engine.StatusCancelled {
		t.Fatalf("cancelled task = %+v, %v", st, err)
	}
	if _, err := eng.Cancel("Q"); !errors.Is(err, engine.ErrFinished) {
		t.Errorf("second cancel err = %v, want ErrFinished", err)
	}
	recs, err := engine.ReadJournal(env.Services.Storage, "Q")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Event != engine.EventSnapshot || recs[0].Status != engine.StatusCancelled {
		t.Errorf("journal after queued cancel = %+v, want one cancelled snapshot", recs)
	}
	open()
	if st := waitTerminal(t, eng, "B"); st.Status != engine.StatusCompleted {
		t.Errorf("blocker = %+v", st)
	}
}

// TestRetentionEviction bounds finished-record retention: once more than K
// tasks finish, the oldest records answer ErrEvicted (the journal keeps the
// compacted outcome).
func TestRetentionEviction(t *testing.T) {
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.RetainFinished = 2
	})
	eng := env.Engine
	ids := []string{"R1", "R2", "R3", "R4"}
	for _, id := range ids {
		if _, err := eng.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal}); err != nil {
			t.Fatal(err)
		}
	}
	// A single worker drains in admission order, so R4 finishing last means
	// everything finished; retention (K=2) keeps only R3 and R4 queryable.
	waitTerminal(t, eng, "R4")
	for _, id := range []string{"R1", "R2"} {
		if _, err := eng.Task(id); !errors.Is(err, engine.ErrEvicted) {
			t.Errorf("task %s err = %v, want ErrEvicted", id, err)
		}
	}
	for _, id := range []string{"R3", "R4"} {
		if st, err := eng.Task(id); err != nil || st.Status != engine.StatusCompleted {
			t.Errorf("task %s = %+v, %v", id, st, err)
		}
	}
	// Evicted IDs stay reserved: resubmission is still a duplicate.
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "R1"), Priority: engine.PriorityNormal}); !errors.Is(err, engine.ErrDuplicate) {
		t.Errorf("resubmit evicted err = %v, want ErrDuplicate", err)
	}
	// The journal still records the evicted task's outcome.
	recs, err := engine.ReadJournal(env.Services.Storage, "R1")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Status != engine.StatusCompleted {
		t.Errorf("evicted task journal = %+v", recs)
	}
}

// TestCompletedJournalCompacts checks that a finished task's journal history
// collapses to a single terminal snapshot record.
func TestCompletedJournalCompacts(t *testing.T) {
	env := newEnv(t, func(opts *core.Options) { opts.Workers = 1 })
	eng := env.Engine
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "J"), Priority: engine.PriorityHigh}); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, eng, "J")
	if st.Status != engine.StatusCompleted || st.Attempt != 1 {
		t.Fatalf("task = %+v", st)
	}
	if st.Report == nil || st.Report.Executed != forkActivities {
		t.Fatalf("report = %+v, want %d executed", st.Report, forkActivities)
	}
	recs, err := engine.ReadJournal(env.Services.Storage, "J")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Event != engine.EventSnapshot ||
		recs[0].Status != engine.StatusCompleted || recs[0].TaskID != "J" {
		t.Fatalf("journal = %+v, want one completed snapshot", recs)
	}
	snap := env.Telemetry.Snapshot()
	if snap.Counters["engine.journal.records"] == 0 || snap.Counters["engine.journal.compactions"] == 0 {
		t.Errorf("journal counters = %v", snap.Counters)
	}
	if snap.Counters["engine.tasks.completed"] != 1 || snap.Counters["engine.admission.accepted"] != 1 {
		t.Errorf("lifecycle counters = %v", snap.Counters)
	}
	if h := snap.Histograms["engine.queue.wait.seconds"]; h.Count != 1 {
		t.Errorf("queue wait histogram = %+v", h)
	}
	if h := snap.Histograms["engine.run.seconds"]; h.Count != 1 {
		t.Errorf("run time histogram = %+v", h)
	}
}

// TestSubmitValidation covers the typed admission errors.
func TestSubmitValidation(t *testing.T) {
	env := newEnv(t, func(opts *core.Options) { opts.Workers = 1 })
	eng := env.Engine
	if _, err := eng.Submit(engine.Submission{}); err == nil {
		t.Error("nil task accepted")
	}
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "V"), Priority: engine.Priority(9)}); err == nil {
		t.Error("bogus priority accepted")
	}
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "V")}); err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "V")}); !errors.Is(err, engine.ErrDuplicate) {
		t.Errorf("duplicate err = %v", err)
	}
	waitTerminal(t, eng, "V")
	if _, err := eng.Task("ghost"); !errors.Is(err, engine.ErrUnknownTask) {
		t.Errorf("ghost err = %v", err)
	}
	if p, err := engine.ParsePriority("high"); err != nil || p != engine.PriorityHigh {
		t.Errorf("ParsePriority(high) = %v, %v", p, err)
	}
	if _, err := engine.ParsePriority("urgent"); err == nil {
		t.Error("bogus priority name parsed")
	}
}

// Multi-tenant fair admission tests: weighted drain order, per-tenant
// quotas, rate limiting, in-flight caps, and accounting views.
package engine_test

import (
	"errors"
	"sort"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
)

// TestTenantWeightedDrainOrder blocks a single worker, queues work for three
// tenants weighted 2:1:1, then releases the gate: with one worker the tasks
// run strictly sequentially, so the per-task finish times reveal the drain
// order, which must follow deficit round-robin.
func TestTenantWeightedDrainOrder(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.PostProcess = gateHook(started, gate)
		opts.Tenants = map[string]engine.TenantConfig{"a": {Weight: 2}}
	})
	t.Cleanup(open)
	eng := env.Engine

	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "blocker"), Priority: engine.PriorityNormal, Tenant: "z"}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}

	// Interleaved submissions; the tenant flows (a, b, c) form in this
	// first-seen order.
	for _, s := range []struct{ id, tenant string }{
		{"a1", "a"}, {"b1", "b"}, {"c1", "c"},
		{"a2", "a"}, {"b2", "b"}, {"c2", "c"},
		{"a3", "a"}, {"a4", "a"},
	} {
		if _, err := eng.Submit(engine.Submission{Task: forkTask(t, s.id), Priority: engine.PriorityNormal, Tenant: s.tenant}); err != nil {
			t.Fatalf("submit %s: %v", s.id, err)
		}
	}
	open()

	ids := []string{"a1", "a2", "a3", "a4", "b1", "b2", "c1", "c2"}
	finish := make(map[string]time.Time, len(ids))
	for _, id := range ids {
		st := waitTerminal(t, eng, id)
		if st.Status != engine.StatusCompleted {
			t.Fatalf("task %s finished %s: %s", id, st.Status, st.Error)
		}
		finish[id] = st.Finished
	}
	sort.Slice(ids, func(i, j int) bool { return finish[ids[i]].Before(finish[ids[j]]) })
	want := []string{"a1", "a2", "b1", "c1", "a3", "a4", "b2", "c2"}
	for i := range want {
		if ids[i] != want[i] {
			t.Fatalf("drain order %v, want %v", ids, want)
		}
	}
}

// TestTenantQueueQuota caps one tenant's queued tasks at 2: the third
// submission fails with ErrTenantQueueFull while another tenant still gets
// in, and the per-tenant rejection counter moves.
func TestTenantQueueQuota(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.PostProcess = gateHook(started, gate)
		opts.Tenants = map[string]engine.TenantConfig{"q": {MaxQueued: 2}}
	})
	t.Cleanup(open)
	eng := env.Engine

	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "blocker"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}
	for _, id := range []string{"q1", "q2"} {
		if _, err := eng.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal, Tenant: "q"}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := eng.Submit(engine.Submission{Task: forkTask(t, "q3"), Priority: engine.PriorityNormal, Tenant: "q"})
	if !errors.Is(err, engine.ErrTenantQueueFull) {
		t.Fatalf("third queued q task: err = %v, want ErrTenantQueueFull", err)
	}
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "other"), Priority: engine.PriorityNormal, Tenant: "free"}); err != nil {
		t.Fatalf("unrelated tenant rejected: %v", err)
	}

	st, ok := eng.Tenant("q")
	if !ok {
		t.Fatal("tenant q unknown")
	}
	if st.Queued != 2 || st.Accepted != 2 || st.RejectedQueueFull != 1 {
		t.Fatalf("tenant q accounting = %+v", st)
	}
	info := eng.TenantAdmission("q")
	if info.QueueLimit != 2 || info.QueueRemaining != 0 {
		t.Fatalf("admission info = %+v", info)
	}
}

// TestTenantRateLimit gives one tenant a 2-token bucket with a negligible
// refill rate: two submissions pass, the third is ErrTenantRateLimited.
func TestTenantRateLimit(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.PostProcess = gateHook(started, gate)
		opts.Tenants = map[string]engine.TenantConfig{"r": {RatePerSec: 0.001, Burst: 2}}
	})
	t.Cleanup(open)
	eng := env.Engine

	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "blocker"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("worker never picked the blocker up")
	}
	for _, id := range []string{"r1", "r2"} {
		if _, err := eng.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal, Tenant: "r"}); err != nil {
			t.Fatal(err)
		}
	}
	_, err := eng.Submit(engine.Submission{Task: forkTask(t, "r3"), Priority: engine.PriorityNormal, Tenant: "r"})
	if !errors.Is(err, engine.ErrTenantRateLimited) {
		t.Fatalf("third r submission: err = %v, want ErrTenantRateLimited", err)
	}
	st, _ := eng.Tenant("r")
	if st.RejectedRateLimited != 1 || st.Accepted != 2 {
		t.Fatalf("tenant r accounting = %+v", st)
	}
	info := eng.TenantAdmission("r")
	if info.RateLimit != 2 || info.RateRemaining != 0 || info.RateResetSec < 1 {
		t.Fatalf("admission info = %+v", info)
	}
}

// TestTenantInFlightCap runs two workers against a tenant capped at one
// concurrent enactment: the second task stays queued while the first blocks,
// and both complete once the gate opens.
func TestTenantInFlightCap(t *testing.T) {
	started := make(chan struct{})
	gate := make(chan struct{})
	open := onceClose(gate)
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 2
		opts.PostProcess = gateHook(started, gate)
		opts.Tenants = map[string]engine.TenantConfig{"x": {MaxInFlight: 1}}
	})
	t.Cleanup(open)
	eng := env.Engine

	for _, id := range []string{"x1", "x2"} {
		if _, err := eng.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal, Tenant: "x"}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-started:
	case <-time.After(30 * time.Second):
		t.Fatal("no worker picked a task up")
	}
	// Give the idle worker every chance to (incorrectly) start the second
	// task past the cap.
	time.Sleep(300 * time.Millisecond)
	st, ok := eng.Tenant("x")
	if !ok || st.Running != 1 || st.Queued != 1 {
		t.Fatalf("tenant x = %+v, want running 1 queued 1", st)
	}
	open()
	for _, id := range []string{"x1", "x2"} {
		if st := waitTerminal(t, eng, id); st.Status != engine.StatusCompleted {
			t.Fatalf("task %s finished %s: %s", id, st.Status, st.Error)
		}
	}
	st, _ = eng.Tenant("x")
	if st.Running != 0 || st.Queued != 0 || st.Completed != 2 {
		t.Fatalf("tenant x after completion = %+v", st)
	}
}

// TestDefaultTenantCanonicalized checks that tenantless submissions are
// attributed to DefaultTenant everywhere: task views, listings, stats.
func TestDefaultTenantCanonicalized(t *testing.T) {
	env := newEnv(t, nil)
	eng := env.Engine
	if _, err := eng.Submit(engine.Submission{Task: forkTask(t, "anon"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	if st := waitTerminal(t, eng, "anon"); st.Tenant != engine.DefaultTenant {
		t.Fatalf("task tenant = %q, want %q", st.Tenant, engine.DefaultTenant)
	}
	tenants := eng.Tenants()
	if len(tenants) != 1 || tenants[0].Tenant != engine.DefaultTenant {
		t.Fatalf("tenants = %+v, want just %q", tenants, engine.DefaultTenant)
	}
	if tenants[0].Completed != 1 || tenants[0].Weight != 1 {
		t.Fatalf("default tenant accounting = %+v", tenants[0])
	}
	if _, ok := eng.Tenant("never-seen"); ok {
		t.Fatal("unknown tenant reported as known")
	}
	if stats := eng.Stats(); stats.Tenants != 1 {
		t.Fatalf("stats.Tenants = %d, want 1", stats.Tenants)
	}
}

package engine_test

import (
	"fmt"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/workflow"
)

// TestCrashMidBatchStress snapshots the file backend's durable prefix while
// the engine is running hot — submissions still arriving, workers enacting,
// the group-commit flusher fsyncing batches — and restarts a fresh
// environment on the copy. The copy lands mid-batch by construction:
// CopyDurable serializes only against the flusher's file mutex, so it falls
// between two fsyncs of a live stream of appends. Invariants checked on the
// second life:
//
//   - no lost task: every submission acknowledged before the copy began is
//     in the journal (Append returned ⇒ its batch was durable) and runs to
//     completion;
//   - no double enactment: tasks terminal in the copy are restored as
//     terminal — same attempt count, zero re-runs;
//   - every journal collapses to a single terminal snapshot.
//
// The test is meaningful under -race (concurrent submit/enact/copy) and is
// exercised that way in CI.
func TestCrashMidBatchStress(t *testing.T) {
	if testing.Short() {
		t.Skip("crash stress cycle in -short mode")
	}
	dir := t.TempDir()
	live := filepath.Join(dir, "live")
	crash := filepath.Join(dir, "crash")
	const total = 10

	var executed atomic.Int64
	trigger := make(chan struct{})
	var triggerOnce sync.Once
	env1 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 3
		opts.Checkpoint = true
		opts.StoreDSN = "file:" + live
		opts.StoreFlush = store.FlushConfig{Interval: time.Millisecond}
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			if executed.Add(1) == 4 {
				triggerOnce.Do(func() { close(trigger) })
			}
		}
	})

	// Submissions flow on their own goroutine so the copy below races real
	// admission appends, not a quiesced store.
	var ackMu sync.Mutex
	acked := []string{}
	submitsDone := make(chan struct{})
	go func() {
		defer close(submitsDone)
		for i := 0; i < total; i++ {
			id := fmt.Sprintf("T-%02d", i)
			if _, err := env1.Engine.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal}); err != nil {
				t.Errorf("submit %s: %v", id, err)
				return
			}
			ackMu.Lock()
			acked = append(acked, id)
			ackMu.Unlock()
		}
	}()

	select {
	case <-trigger:
	case <-time.After(30 * time.Second):
		t.Fatal("engine never reached the fourth activity execution")
	}
	// The crash image: whatever is durable at this instant. Submissions and
	// enactments keep running while the copy is taken.
	ackMu.Lock()
	ackedAtCopy := append([]string(nil), acked...)
	ackMu.Unlock()
	if err := env1.Store.(store.DurableCopier).CopyDurable(crash); err != nil {
		t.Fatal(err)
	}
	<-submitsDone
	env1.Close()

	// What did the crash image capture? Terminal tasks must not re-run.
	inspect, err := store.Open("file:"+crash, store.Options{})
	if err != nil {
		t.Fatal(err)
	}
	terminalAtCopy := map[string]int{} // id -> attempt
	for _, id := range ackedAtCopy {
		recs, err := engine.ReadJournal(inspect, id)
		if err != nil {
			t.Fatalf("journal of %s in crash image: %v", id, err)
		}
		if len(recs) == 0 {
			t.Errorf("task %s acked before the copy but absent from the crash image", id)
			continue
		}
		last := recs[len(recs)-1]
		if last.Event == engine.EventSnapshot && last.Status == engine.StatusCompleted {
			terminalAtCopy[id] = last.Attempt
		}
	}
	if err := inspect.Close(); err != nil {
		t.Fatal(err)
	}

	// Second life on the crash image.
	var reruns atomic.Int64
	env2 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 3
		opts.Checkpoint = true
		opts.StoreDSN = "file:" + crash
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) { reruns.Add(1) }
	})
	report, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if report.Terminal < len(terminalAtCopy) {
		t.Errorf("recovery restored %d terminal tasks, want >= %d", report.Terminal, len(terminalAtCopy))
	}

	for _, id := range ackedAtCopy {
		st := waitTerminal(t, env2.Engine, id)
		if st.Status != engine.StatusCompleted {
			t.Errorf("task %s = %+v, want completed", id, st)
		}
		if attempt, wasTerminal := terminalAtCopy[id]; wasTerminal && st.Attempt != attempt {
			t.Errorf("task %s finished before the crash with attempt %d but shows attempt %d after recovery (re-enacted?)",
				id, attempt, st.Attempt)
		}
		recs, err := engine.ReadJournal(env2.Services.Storage, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Event != engine.EventSnapshot {
			t.Errorf("journal of %s = %d records ending in %q, want one snapshot", id, len(recs), recs[len(recs)-1].Event)
		}
	}

	// Workers re-enact only what was not finished in the crash image. The
	// image may also hold tasks acked after the copy snapshot was taken
	// (their admission append raced the copy and won), so the upper bound
	// counts every submission that was not yet terminal; the lower bound
	// counts only the acked-and-unfinished ones, each of which replays at
	// least one activity.
	lower := int64(len(ackedAtCopy) - len(terminalAtCopy))
	upper := int64(total-len(terminalAtCopy)) * forkActivities
	if got := reruns.Load(); got < lower || got > upper {
		t.Errorf("second-life executions = %d, want between %d and %d", got, lower, upper)
	}
}

package engine_test

import (
	"encoding/json"
	"math"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/workflow"
)

// budgetTask is forkTask with a spend cap on the case.
func budgetTask(t testing.TB, id string, budget float64) *workflow.Task {
	t.Helper()
	task := forkTask(t, id)
	task.Case.Budget = budget
	return task
}

// TestInfeasibleBudgetTerminates is the acceptance criterion for the budget
// short-circuit: a case whose budget cannot pay for even the cheapest
// candidate of its first activity terminates failed with the budget_exceeded
// reason BEFORE the retry loop — no retries consumed, no replanning
// attempted — and the scheduler.cost.budget_exceeded counter moves.
func TestInfeasibleBudgetTerminates(t *testing.T) {
	env := newEnv(t, nil)
	task := budgetTask(t, "T-broke", 1e-9)
	if _, err := env.Engine.Submit(engine.Submission{Task: task, Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	st := waitTerminal(t, env.Engine, "T-broke")
	if st.Status != engine.StatusFailed {
		t.Fatalf("status = %q, want failed", st.Status)
	}
	if st.Reason != coordination.ReasonBudgetExceeded {
		t.Errorf("reason = %q, want %q", st.Reason, coordination.ReasonBudgetExceeded)
	}
	if !strings.Contains(st.Error, "budget") {
		t.Errorf("error %q does not mention the budget", st.Error)
	}
	if st.Budget != 1e-9 {
		t.Errorf("status budget = %v, want 1e-9", st.Budget)
	}
	if st.Report == nil {
		t.Fatal("no report on the failed task")
	}
	if st.Report.Retries != 0 {
		t.Errorf("retries = %d, want 0 (infeasible budget must not consume retries)", st.Report.Retries)
	}
	if st.Report.Replans != 0 {
		t.Errorf("replans = %d, want 0 (constraint violations are terminal)", st.Report.Replans)
	}
	snap := env.Telemetry.Snapshot()
	if got := snap.Counters["scheduler.cost.budget_exceeded"]; got < 1 {
		t.Errorf("scheduler.cost.budget_exceeded = %d, want >= 1", got)
	}
	if got := snap.Counters["scheduler.cost.schedules"]; got < 1 {
		t.Errorf("scheduler.cost.schedules = %d, want >= 1", got)
	}
}

// TestBudgetCrashRecovery kills a node mid-enactment of a budget-constrained
// case — after its first checkpoint, inside its un-checkpointed second batch
// — and replays the crash image on every backend. The replay must neither
// double-enact (only the unfinished batch re-runs) nor double-charge: the
// final spend equals the checkpointed spend plus the resumed batch, matching
// a crash-free control run of the same case, and the tenant ledger accrues
// that spend exactly once.
func TestBudgetCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash/recovery cycle in -short mode")
	}
	for _, backend := range []string{"mem", "file", "bolt"} {
		t.Run(backend, func(t *testing.T) { budgetCrashRecovery(t, backend) })
	}
}

func budgetCrashRecovery(t *testing.T, backend string) {
	const caseBudget = 1e6

	// Control: the same constrained case, same single-worker options, no
	// crash. Its spend is what the crashed-and-recovered run must match —
	// a double-charge would exceed it by the checkpointed batch's cost.
	control := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Checkpoint = true
	})
	if _, err := control.Engine.Submit(engine.Submission{Task: budgetTask(t, "B-run", caseBudget), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	controlSt := waitTerminal(t, control.Engine, "B-run")
	if controlSt.Status != engine.StatusCompleted || controlSt.Report == nil {
		t.Fatalf("control run = %+v, want completed", controlSt)
	}
	controlCost := controlSt.Report.TotalCost
	if controlCost <= 0 {
		t.Fatalf("control run charged %v, want > 0", controlCost)
	}
	control.Close()

	dir := t.TempDir()
	var dsn1, dsn2, memSnap string
	switch backend {
	case "mem":
		dsn1, dsn2 = "mem:", "mem:"
		memSnap = filepath.Join(dir, "state.json")
	case "file":
		dsn1 = "file:" + filepath.Join(dir, "live")
		dsn2 = "file:" + filepath.Join(dir, "crash")
	case "bolt":
		dsn1 = "bolt:" + filepath.Join(dir, "live.db")
		dsn2 = "bolt:" + filepath.Join(dir, "crash.db")
	}

	// First life: block at the second activity — checkpoint v1 (the POD
	// batch, already charged) exists, batch two is in flight, unlogged.
	midway := make(chan struct{})
	crashed := make(chan struct{})
	var calls1 atomic.Int64
	env1 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Checkpoint = true
		opts.StoreDSN = dsn1
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			if calls1.Add(1) == 2 {
				close(midway)
				<-crashed
			}
		}
	})
	if _, err := env1.Engine.Submit(engine.Submission{Task: budgetTask(t, "B-run", caseBudget), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-midway:
	case <-time.After(30 * time.Second):
		t.Fatal("constrained task never reached its second activity")
	}
	if backend == "mem" {
		if err := env1.Services.Storage.Save(memSnap); err != nil {
			t.Fatal(err)
		}
	} else {
		dc, ok := env1.Store.(store.DurableCopier)
		if !ok {
			t.Fatalf("%T does not implement store.DurableCopier", env1.Store)
		}
		if err := dc.CopyDurable(strings.TrimPrefix(dsn2, backend+":")); err != nil {
			t.Fatal(err)
		}
	}
	close(crashed)
	env1.Close()

	// Second life on the crash image.
	var calls2 atomic.Int64
	env2 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Checkpoint = true
		opts.StoreDSN = dsn2
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) { calls2.Add(1) }
	})
	if backend == "mem" {
		if err := env2.Services.Storage.Load(memSnap); err != nil {
			t.Fatal(err)
		}
	}

	// The crash image must carry the constraint durably: the journaled
	// envelope keeps the budget, and the checkpoint holds the spend already
	// charged for the checkpointed batch.
	recs, err := engine.ReadJournal(env2.Services.Storage, "B-run")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) == 0 {
		t.Fatal("crash image has no journal for B-run")
	}
	var envBudget float64
	for _, rec := range recs {
		if rec.Task != nil {
			envBudget = rec.Task.Budget
		}
	}
	if envBudget != caseBudget {
		t.Errorf("journaled envelope budget = %v, want %v", envBudget, caseBudget)
	}
	raw, _, found, err := env2.Services.Storage.Get(coordination.CheckpointKey("B-run"), 0)
	if err != nil || !found {
		t.Fatalf("checkpoint missing from crash image (err=%v)", err)
	}
	var cp coordination.CheckpointData
	if err := json.Unmarshal(raw, &cp); err != nil {
		t.Fatal(err)
	}
	if cp.Cost <= 0 {
		t.Fatalf("checkpointed spend = %v, want > 0 (batch one was charged)", cp.Cost)
	}
	if cp.Budget != caseBudget {
		t.Errorf("checkpointed budget = %v, want %v", cp.Budget, caseBudget)
	}

	report, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 1 || report.Resumed[0] != "B-run" {
		t.Fatalf("recovery report = %+v, want B-run resumed", report)
	}
	st := waitTerminal(t, env2.Engine, "B-run")
	if st.Status != engine.StatusCompleted {
		t.Fatalf("recovered task = %+v, want completed (budget was ample)", st)
	}
	if st.Reason != "" {
		t.Errorf("recovered task reason = %q, want none", st.Reason)
	}
	if st.Budget != caseBudget {
		t.Errorf("recovered status budget = %v, want %v", st.Budget, caseBudget)
	}

	// No double enactment: only the two un-checkpointed activities replay.
	if got, want := calls2.Load(), int64(forkActivities-1); got != want {
		t.Errorf("second-life executions = %d, want %d", got, want)
	}

	// No double charge: a replay that re-charged the checkpointed batch
	// would land a full cp.Cost above the crash-free control run, so the
	// recovered spend must stay within half that of the control figure.
	// (Exact equality is too strict: the resumed batch re-dispatches
	// without batch-one perf history, which can nudge the node choice.)
	if st.Report == nil {
		t.Fatal("recovered task has no report")
	}
	if math.Abs(st.Report.TotalCost-controlCost) > cp.Cost/2 {
		t.Errorf("recovered spend = %v, control spend = %v (checkpointed batch %v double-charged?)",
			st.Report.TotalCost, controlCost, cp.Cost)
	}
	if st.Report.TotalCost <= cp.Cost {
		t.Errorf("recovered spend %v not above checkpointed spend %v (resumed batch uncharged?)",
			st.Report.TotalCost, cp.Cost)
	}
	ts, ok := env2.Engine.Tenant(engine.DefaultTenant)
	if !ok {
		t.Fatal("default tenant unknown")
	}
	if math.Abs(ts.SpentCost-st.Report.TotalCost) > 1e-9 {
		t.Errorf("tenant spent %v, want exactly one accrual of %v", ts.SpentCost, st.Report.TotalCost)
	}

	// The journal collapses to one completed snapshot, like any other task.
	recs, err = engine.ReadJournal(env2.Services.Storage, "B-run")
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 1 || recs[0].Event != engine.EventSnapshot || recs[0].Status != engine.StatusCompleted {
		t.Errorf("journal = %+v, want one completed snapshot", recs)
	}
}

package engine_test

import (
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/store"
	"repro/internal/workflow"
)

// TestCrashRecovery is the kill-and-restart acceptance scenario, run once
// per storage backend: a burst of tasks is submitted to a single-worker
// engine with checkpointing on; the first task is stopped mid-enactment
// (after its first checkpoint, inside its second dispatch batch) and the
// crash state is captured — a JSON snapshot of the in-memory store, or the
// fsynced on-disk prefix (CopyDurable) of the file and bolt backends, which
// is exactly what a kill -9 leaves behind. A brand-new environment opens
// that state, replays the journal, resumes the interrupted task from its
// checkpoint, and re-enqueues the never-started ones. Every task must end
// completed, no journal entry may stay non-terminal, and no activity past
// the last checkpoint may be enacted twice (counted via the post-process
// hook) — checkpoint-exact on every backend.
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash/recovery cycle in -short mode")
	}
	for _, backend := range []string{"mem", "file", "bolt"} {
		t.Run(backend, func(t *testing.T) { crashRecovery(t, backend) })
	}
}

func crashRecovery(t *testing.T, backend string) {
	dir := t.TempDir()
	var dsn1, dsn2, memSnap string
	switch backend {
	case "mem":
		dsn1, dsn2 = "mem:", "mem:"
		memSnap = filepath.Join(dir, "state.json")
	case "file":
		dsn1 = "file:" + filepath.Join(dir, "live")
		dsn2 = "file:" + filepath.Join(dir, "crash")
	case "bolt":
		dsn1 = "bolt:" + filepath.Join(dir, "live.db")
		dsn2 = "bolt:" + filepath.Join(dir, "crash.db")
	}
	ids := []string{"T-run", "T-q1", "T-q2", "T-q3"}

	// First life. The hook blocks at the second activity of the first task:
	// by then checkpoint v1 (after batch one, the POD) exists, and batch two
	// (the FORK of two P3DRs) is in flight and NOT checkpointed.
	midway := make(chan struct{})
	crashed := make(chan struct{})
	var calls1 atomic.Int64
	env1 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Checkpoint = true
		opts.StoreDSN = dsn1
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			if calls1.Add(1) == 2 {
				close(midway)
				<-crashed
			}
		}
	})
	for _, id := range ids {
		if _, err := env1.Engine.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-midway:
	case <-time.After(30 * time.Second):
		t.Fatal("first task never reached its second activity")
	}
	// Capture the crash state mid-enactment, then let the doomed environment
	// unwind. The in-memory backend needs an explicit snapshot; the durable
	// backends clone their fsynced prefix — the bytes a crash preserves.
	if backend == "mem" {
		if err := env1.Services.Storage.Save(memSnap); err != nil {
			t.Fatal(err)
		}
	} else {
		dc, ok := env1.Store.(store.DurableCopier)
		if !ok {
			t.Fatalf("%T does not implement store.DurableCopier", env1.Store)
		}
		if err := dc.CopyDurable(strings.TrimPrefix(dsn2, backend+":")); err != nil {
			t.Fatal(err)
		}
	}
	close(crashed)
	env1.Close()

	// Second life: fresh platform, agents, coordinator, engine. Open the
	// crashed state and replay the journal.
	var calls2 atomic.Int64
	env2 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Checkpoint = true
		opts.StoreDSN = dsn2
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) { calls2.Add(1) }
	})
	if backend == "mem" {
		if err := env2.Services.Storage.Load(memSnap); err != nil {
			t.Fatal(err)
		}
	}
	report, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 1 || report.Resumed[0] != "T-run" {
		t.Errorf("resumed = %v, want [T-run]", report.Resumed)
	}
	if len(report.Requeued) != 3 {
		t.Errorf("requeued = %v, want the three never-started tasks", report.Requeued)
	}
	if len(report.Restarted) != 0 || report.Terminal != 0 {
		t.Errorf("report = %+v", report)
	}

	for _, id := range ids {
		st := waitTerminal(t, env2.Engine, id)
		if st.Status != engine.StatusCompleted {
			t.Errorf("task %s = %+v", id, st)
		}
		if st.Report == nil || st.Report.Executed != forkActivities {
			t.Errorf("task %s report = %+v, want %d executed", id, st.Report, forkActivities)
		}
	}

	// No double enactment past the checkpoint: the resumed task replays only
	// its unfinished second batch (2 activities — the blocked P3DR's effects
	// were never checkpointed), the three requeued tasks run in full.
	wantCalls := int64(forkActivities - 1 + 3*forkActivities)
	if got := calls2.Load(); got != wantCalls {
		t.Errorf("second-life activity executions = %d, want %d", got, wantCalls)
	}

	// No orphaned journal entries: every journal has collapsed to a single
	// terminal snapshot.
	for _, id := range ids {
		recs, err := engine.ReadJournal(env2.Services.Storage, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Event != engine.EventSnapshot || recs[0].Status != engine.StatusCompleted {
			t.Errorf("journal of %s = %+v, want one completed snapshot", id, recs)
		}
	}

	// Recovery telemetry moved.
	snap := env2.Telemetry.Snapshot()
	if snap.Counters["engine.recovery.resumed"] != 1 || snap.Counters["engine.recovery.requeued"] != 3 {
		t.Errorf("recovery counters = %v", snap.Counters)
	}
	// Resumed task ran attempt 2; a trace span records the recovery.
	st, err := env2.Engine.Task("T-run")
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempt != 2 {
		t.Errorf("resumed task attempt = %d, want 2", st.Attempt)
	}
}

// TestRecoverIdempotent replays a journal of already-finished tasks: their
// records are restored for lookups and nothing re-runs.
func TestRecoverIdempotent(t *testing.T) {
	store := filepath.Join(t.TempDir(), "state.json")
	env1 := newEnv(t, func(opts *core.Options) { opts.Workers = 1 })
	if _, err := env1.Engine.Submit(engine.Submission{Task: forkTask(t, "T-done"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, env1.Engine, "T-done")
	if err := env1.Services.Storage.Save(store); err != nil {
		t.Fatal(err)
	}
	env1.Close()

	env2 := newEnv(t, func(opts *core.Options) { opts.Workers = 1 })
	if err := env2.Services.Storage.Load(store); err != nil {
		t.Fatal(err)
	}
	report, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if report.Total() != 0 || report.Terminal != 1 {
		t.Fatalf("report = %+v, want one terminal task and nothing requeued", report)
	}
	st, err := env2.Engine.Task("T-done")
	if err != nil || st.Status != engine.StatusCompleted {
		t.Fatalf("restored record = %+v, %v", st, err)
	}
	// A second replay on the warm engine skips the known record.
	again, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if again.Total() != 0 || again.Terminal != 0 {
		t.Errorf("second replay = %+v, want nothing", again)
	}
}

package engine_test

import (
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workflow"
)

// TestCrashRecovery is the kill-and-restart acceptance scenario: a burst of
// tasks is submitted to a single-worker engine with checkpointing on; the
// first task is stopped mid-enactment (after its first checkpoint, inside
// its second dispatch batch) and the storage service is snapshotted to disk
// — the simulated crash. A brand-new environment loads the same store file,
// replays the journal, resumes the interrupted task from its checkpoint, and
// re-enqueues the never-started ones. Every task must end completed, no
// journal entry may stay non-terminal, and no activity past the last
// checkpoint may be enacted twice (counted via the post-process hook).
func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("full crash/recovery cycle in -short mode")
	}
	store := filepath.Join(t.TempDir(), "state.json")
	ids := []string{"T-run", "T-q1", "T-q2", "T-q3"}

	// First life. The hook blocks at the second activity of the first task:
	// by then checkpoint v1 (after batch one, the POD) exists, and batch two
	// (the FORK of two P3DRs) is in flight and NOT checkpointed.
	midway := make(chan struct{})
	crashed := make(chan struct{})
	var calls1 atomic.Int64
	env1 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Checkpoint = true
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			if calls1.Add(1) == 2 {
				close(midway)
				<-crashed
			}
		}
	})
	for _, id := range ids {
		if _, err := env1.Engine.Submit(engine.Submission{Task: forkTask(t, id), Priority: engine.PriorityNormal}); err != nil {
			t.Fatal(err)
		}
	}
	select {
	case <-midway:
	case <-time.After(30 * time.Second):
		t.Fatal("first task never reached its second activity")
	}
	// Snapshot the storage service mid-enactment — this file is the state a
	// crash would leave behind — then let the doomed environment unwind.
	if err := env1.Services.Storage.Save(store); err != nil {
		t.Fatal(err)
	}
	close(crashed)
	env1.Close()

	// Second life: fresh platform, agents, coordinator, engine. Load the
	// crashed state and replay the journal.
	var calls2 atomic.Int64
	env2 := newEnv(t, func(opts *core.Options) {
		opts.Workers = 1
		opts.Checkpoint = true
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) { calls2.Add(1) }
	})
	if err := env2.Services.Storage.Load(store); err != nil {
		t.Fatal(err)
	}
	report, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if len(report.Resumed) != 1 || report.Resumed[0] != "T-run" {
		t.Errorf("resumed = %v, want [T-run]", report.Resumed)
	}
	if len(report.Requeued) != 3 {
		t.Errorf("requeued = %v, want the three never-started tasks", report.Requeued)
	}
	if len(report.Restarted) != 0 || report.Terminal != 0 {
		t.Errorf("report = %+v", report)
	}

	for _, id := range ids {
		st := waitTerminal(t, env2.Engine, id)
		if st.Status != engine.StatusCompleted {
			t.Errorf("task %s = %+v", id, st)
		}
		if st.Report == nil || st.Report.Executed != forkActivities {
			t.Errorf("task %s report = %+v, want %d executed", id, st.Report, forkActivities)
		}
	}

	// No double enactment past the checkpoint: the resumed task replays only
	// its unfinished second batch (2 activities — the blocked P3DR's effects
	// were never checkpointed), the three requeued tasks run in full.
	wantCalls := int64(forkActivities - 1 + 3*forkActivities)
	if got := calls2.Load(); got != wantCalls {
		t.Errorf("second-life activity executions = %d, want %d", got, wantCalls)
	}

	// No orphaned journal entries: every journal has collapsed to a single
	// terminal snapshot.
	for _, id := range ids {
		recs, err := engine.ReadJournal(env2.Services.Storage, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Event != engine.EventSnapshot || recs[0].Status != engine.StatusCompleted {
			t.Errorf("journal of %s = %+v, want one completed snapshot", id, recs)
		}
	}

	// Recovery telemetry moved.
	snap := env2.Telemetry.Snapshot()
	if snap.Counters["engine.recovery.resumed"] != 1 || snap.Counters["engine.recovery.requeued"] != 3 {
		t.Errorf("recovery counters = %v", snap.Counters)
	}
	// Resumed task ran attempt 2; a trace span records the recovery.
	st, err := env2.Engine.Task("T-run")
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempt != 2 {
		t.Errorf("resumed task attempt = %d, want 2", st.Attempt)
	}
}

// TestRecoverIdempotent replays a journal of already-finished tasks: their
// records are restored for lookups and nothing re-runs.
func TestRecoverIdempotent(t *testing.T) {
	store := filepath.Join(t.TempDir(), "state.json")
	env1 := newEnv(t, func(opts *core.Options) { opts.Workers = 1 })
	if _, err := env1.Engine.Submit(engine.Submission{Task: forkTask(t, "T-done"), Priority: engine.PriorityNormal}); err != nil {
		t.Fatal(err)
	}
	waitTerminal(t, env1.Engine, "T-done")
	if err := env1.Services.Storage.Save(store); err != nil {
		t.Fatal(err)
	}
	env1.Close()

	env2 := newEnv(t, func(opts *core.Options) { opts.Workers = 1 })
	if err := env2.Services.Storage.Load(store); err != nil {
		t.Fatal(err)
	}
	report, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if report.Total() != 0 || report.Terminal != 1 {
		t.Fatalf("report = %+v, want one terminal task and nothing requeued", report)
	}
	st, err := env2.Engine.Task("T-done")
	if err != nil || st.Status != engine.StatusCompleted {
		t.Fatalf("restored record = %+v, %v", st, err)
	}
	// A second replay on the warm engine skips the known record.
	again, err := env2.Engine.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if again.Total() != 0 || again.Terminal != 0 {
		t.Errorf("second replay = %+v, want nothing", again)
	}
}

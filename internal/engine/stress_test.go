package engine_test

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/workflow"
)

// TestConcurrentMultiTenantStress hammers one engine from eight submitting
// goroutines spread over four weighted tenants while a canceller picks off
// every seventh task and another goroutine replays the journal on the warm
// engine (the crash-recovery path racing live enactment). Run under -race in
// make check. Invariants: every accepted task reaches exactly one terminal
// state, a completed task ran all its activities exactly once on attempt 1,
// warm replays never requeue or resume anything, each journal collapses to a
// single terminal snapshot, and the per-tenant accounting balances.
func TestConcurrentMultiTenantStress(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	const (
		goroutines = 8
		perG       = 10
	)
	tenants := []string{"red", "green", "blue", "grey"}
	env := newEnv(t, func(opts *core.Options) {
		opts.Workers = 4
		opts.Checkpoint = true
		opts.QueueCapacity = goroutines * perG
		opts.RetainFinished = 4 * goroutines * perG
		opts.Tenants = map[string]engine.TenantConfig{
			"red":   {Weight: 4},
			"green": {Weight: 2},
			"blue":  {Weight: 1},
			"grey":  {Weight: 1},
		}
		// A touch of latency per activity keeps the queue backlogged so the
		// canceller and the replayer race genuinely in-flight work.
		opts.PostProcess = func(*workflow.Activity, []*workflow.DataItem, int) {
			time.Sleep(time.Millisecond)
		}
	})
	eng := env.Engine

	// Pre-build every task on the test goroutine (forkTask may t.Fatal).
	type job struct {
		id     string
		task   *workflow.Task
		tenant string
		prio   engine.Priority
	}
	prios := []engine.Priority{engine.PriorityHigh, engine.PriorityNormal, engine.PriorityLow}
	jobs := make([][]job, goroutines)
	var all []string
	for g := 0; g < goroutines; g++ {
		for i := 0; i < perG; i++ {
			id := fmt.Sprintf("S-%d-%d", g, i)
			jobs[g] = append(jobs[g], job{
				id:     id,
				task:   forkTask(t, id),
				tenant: tenants[(g+i)%len(tenants)],
				prio:   prios[i%len(prios)],
			})
			all = append(all, id)
		}
	}

	var (
		wg        sync.WaitGroup
		submitted sync.Map // id -> struct{} once accepted
	)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(list []job) {
			defer wg.Done()
			for _, j := range list {
				_, err := eng.Submit(engine.Submission{
					Task: j.task, Priority: j.prio, Tenant: j.tenant,
				})
				if err != nil {
					t.Errorf("submit %s: %v", j.id, err)
					continue
				}
				submitted.Store(j.id, struct{}{})
			}
		}(jobs[g])
	}

	// Canceller: sweeps the id space repeatedly, cancelling every seventh
	// task. Races submission, enactment, and completion — any error except
	// "not found yet" / "already finished" is a bug surfaced by Cancel.
	stop := make(chan struct{})
	var cancelWG sync.WaitGroup
	cancelWG.Add(1)
	go func() {
		defer cancelWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for i := 0; i < len(all); i += 7 {
				_, _ = eng.Cancel(all[i])
			}
			time.Sleep(5 * time.Millisecond)
		}
	}()

	// Warm replayer: the crash-recovery scan racing live enactment. Every
	// record is already known in memory, so a warm replay must be a no-op —
	// anything requeued or resumed here would be a double enactment.
	cancelWG.Add(1)
	go func() {
		defer cancelWG.Done()
		for n := 0; ; n++ {
			select {
			case <-stop:
				return
			default:
			}
			report, err := eng.Recover()
			if err != nil {
				t.Errorf("warm replay %d: %v", n, err)
				return
			}
			if report.Total() != 0 {
				t.Errorf("warm replay %d touched live tasks: %+v", n, report)
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
	}()

	wg.Wait()
	for _, id := range all {
		if _, ok := submitted.Load(id); !ok {
			continue
		}
		waitTerminal(t, eng, id)
	}
	close(stop)
	cancelWG.Wait()

	// Terminal census: no task lost, completed tasks enacted exactly once.
	counts := map[string]int{}
	for _, id := range all {
		if _, ok := submitted.Load(id); !ok {
			continue
		}
		st, err := eng.Task(id)
		if err != nil {
			t.Fatalf("task %s lost: %v", id, err)
		}
		counts[st.Status]++
		if st.Status == engine.StatusCompleted {
			if st.Attempt != 1 {
				t.Errorf("task %s completed on attempt %d, want 1", id, st.Attempt)
			}
			if st.Report == nil || st.Report.Executed != forkActivities {
				t.Errorf("task %s report = %+v, want %d executed", id, st.Report, forkActivities)
			}
		}
		recs, err := engine.ReadJournal(env.Services.Storage, id)
		if err != nil {
			t.Fatal(err)
		}
		if len(recs) != 1 || recs[0].Event != engine.EventSnapshot {
			t.Errorf("journal of %s = %d records, want one terminal snapshot", id, len(recs))
		}
	}
	total := counts[engine.StatusCompleted] + counts[engine.StatusFailed] + counts[engine.StatusCancelled]
	if total != goroutines*perG {
		t.Errorf("terminal census = %v (total %d), want %d tasks", counts, total, goroutines*perG)
	}
	if counts[engine.StatusCompleted] == 0 {
		t.Error("nothing completed — the stress never exercised enactment")
	}

	// The queue has fully drained and the books balance per tenant.
	stats := eng.Stats()
	if stats.Depth != 0 || stats.Running != 0 {
		t.Errorf("engine not drained: %+v", stats)
	}
	var acceptedSum int64
	for _, ts := range eng.Tenants() {
		if ts.Queued != 0 || ts.Running != 0 {
			t.Errorf("tenant %s not drained: %+v", ts.Tenant, ts)
		}
		if got := ts.Completed + ts.Failed + ts.Cancelled; got != ts.Accepted {
			t.Errorf("tenant %s books unbalanced: accepted %d, terminal %d", ts.Tenant, ts.Accepted, got)
		}
		acceptedSum += ts.Accepted
	}
	if acceptedSum != int64(goroutines*perG) {
		t.Errorf("tenant accepted sum = %d, want %d", acceptedSum, goroutines*perG)
	}
	if _, err := eng.Cancel(all[0]); err == nil || (!errors.Is(err, engine.ErrFinished) && !errors.Is(err, engine.ErrEvicted)) {
		t.Errorf("cancel of terminal task = %v, want ErrFinished", err)
	}
}

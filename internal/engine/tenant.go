package engine

import (
	"time"

	"repro/internal/fairq"
	"repro/internal/telemetry"
)

// DefaultTenant is the tenant submissions without an explicit tenant are
// attributed to. It competes for service like any other tenant.
const DefaultTenant = "default"

// canonicalTenant maps the empty tenant to DefaultTenant so that accounting,
// fair queueing, and quotas always have a concrete principal.
func canonicalTenant(tenant string) string {
	if tenant == "" {
		return DefaultTenant
	}
	return tenant
}

// TenantConfig sets one tenant's fair-share weight and admission quotas.
// The zero value means weight 1 and no quotas.
type TenantConfig struct {
	// Weight is the tenant's deficit-round-robin share within each priority
	// class: while several tenants stay backlogged, a tenant with weight w
	// is served w tasks per rotation. Non-positive means 1.
	Weight int
	// MaxQueued caps the tenant's queued (not running) tasks; submissions
	// beyond it fail with ErrTenantQueueFull. 0 means no per-tenant cap
	// (the global QueueCapacity still applies).
	MaxQueued int
	// MaxInFlight caps the tenant's concurrently running tasks; excess work
	// stays queued without blocking other tenants. 0 means no cap.
	MaxInFlight int
	// RatePerSec is the tenant's token-bucket submit rate; submissions with
	// no token available fail with ErrTenantRateLimited. 0 disables rate
	// limiting.
	RatePerSec float64
	// Burst is the token bucket's capacity; 0 means max(1, ceil(RatePerSec)).
	Burst int
}

// tenantState is the engine's per-tenant accounting; all mutable fields are
// guarded by Engine.mu.
type tenantState struct {
	name   string
	cfg    TenantConfig
	bucket *fairq.TokenBucket

	queued  int
	running int

	accepted      int64
	rejectedQueue int64 // ErrTenantQueueFull and global ErrQueueFull alike
	rejectedRate  int64
	completed     int64
	failed        int64
	cancelled     int64

	// spent is the tenant's accumulated simulated spend (sum of terminal
	// reports' TotalCost) — the per-tenant ledger behind budget accounting.
	spent float64

	waitSum, runSum     float64
	waitCount, runCount int64

	mAccepted, mRejectedQueue, mRejectedRate *telemetry.Counter
	mCompleted, mFailed, mCancelled          *telemetry.Counter
	gQueued, gRunning, gSpent                *telemetry.Gauge
	hWait, hRun                              *telemetry.Histogram
}

// tenantLocked returns the state for a canonical tenant name, creating it on
// first sight with the configured (or default) quota set. Caller holds e.mu.
func (e *Engine) tenantLocked(name string) *tenantState {
	if ts := e.tenants[name]; ts != nil {
		return ts
	}
	cfg, ok := e.cfg.Tenants[name]
	if !ok {
		cfg = e.cfg.TenantDefaults
	}
	ts := &tenantState{
		name:   name,
		cfg:    cfg,
		bucket: fairq.NewTokenBucket(cfg.RatePerSec, cfg.Burst),
	}
	tel := e.tel
	ts.mAccepted = tel.Counter(telemetry.TenantMetric(name, "accepted"))
	ts.mRejectedQueue = tel.Counter(telemetry.TenantMetric(name, "rejected.queue"))
	ts.mRejectedRate = tel.Counter(telemetry.TenantMetric(name, "rejected.rate"))
	ts.mCompleted = tel.Counter(telemetry.TenantMetric(name, "completed"))
	ts.mFailed = tel.Counter(telemetry.TenantMetric(name, "failed"))
	ts.mCancelled = tel.Counter(telemetry.TenantMetric(name, "cancelled"))
	ts.gQueued = tel.Gauge(telemetry.TenantMetric(name, "queued"))
	ts.gRunning = tel.Gauge(telemetry.TenantMetric(name, "running"))
	ts.gSpent = tel.Gauge(telemetry.TenantMetric(name, "spent"))
	ts.hWait = tel.Histogram(telemetry.TenantMetric(name, "wait.seconds"), []float64{0.001, 0.01, 0.1, 1, 10, 60, 300})
	ts.hRun = tel.Histogram(telemetry.TenantMetric(name, "run.seconds"), []float64{0.001, 0.01, 0.1, 1, 10, 60, 300})
	e.tenants[name] = ts
	return ts
}

// weight returns a tenant's effective fair-share weight. Called by the fair
// queue during Pop, so e.mu is already held.
func (e *Engine) weight(tenant string) int {
	if ts := e.tenants[tenant]; ts != nil && ts.cfg.Weight > 0 {
		return ts.cfg.Weight
	}
	return 1
}

// eligible reports whether a tenant may start another task (in-flight cap).
// Called by the fair queue during Pop under e.mu.
func (e *Engine) eligible(tenant string) bool {
	ts := e.tenants[tenant]
	return ts == nil || ts.cfg.MaxInFlight <= 0 || ts.running < ts.cfg.MaxInFlight
}

// now is the engine's monotonic clock for token buckets, in seconds since
// engine creation.
func (e *Engine) now() float64 { return time.Since(e.epoch).Seconds() }

// TenantStatus is the public per-tenant accounting view behind
// GET /api/v1/tenants.
type TenantStatus struct {
	Tenant      string  `json:"tenant"`
	Weight      int     `json:"weight"`
	MaxQueued   int     `json:"maxQueued,omitempty"`
	MaxInFlight int     `json:"maxInFlight,omitempty"`
	RatePerSec  float64 `json:"ratePerSec,omitempty"`
	Burst       int     `json:"burst,omitempty"`

	Queued              int   `json:"queued"`
	Running             int   `json:"running"`
	Accepted            int64 `json:"accepted"`
	RejectedQueueFull   int64 `json:"rejectedQueueFull"`
	RejectedRateLimited int64 `json:"rejectedRateLimited"`
	Completed           int64 `json:"completed"`
	Failed              int64 `json:"failed"`
	Cancelled           int64 `json:"cancelled"`

	// SpentCost is the tenant's accumulated simulated spend across all
	// terminal tasks (currency units).
	SpentCost float64 `json:"spentCost"`

	MeanWaitSec float64 `json:"meanWaitSec"`
	MeanRunSec  float64 `json:"meanRunSec"`
}

func (ts *tenantState) status(weight int) TenantStatus {
	s := TenantStatus{
		Tenant:              ts.name,
		Weight:              weight,
		MaxQueued:           ts.cfg.MaxQueued,
		MaxInFlight:         ts.cfg.MaxInFlight,
		RatePerSec:          ts.cfg.RatePerSec,
		Burst:               ts.cfg.Burst,
		Queued:              ts.queued,
		Running:             ts.running,
		Accepted:            ts.accepted,
		RejectedQueueFull:   ts.rejectedQueue,
		RejectedRateLimited: ts.rejectedRate,
		Completed:           ts.completed,
		Failed:              ts.failed,
		Cancelled:           ts.cancelled,
		SpentCost:           ts.spent,
	}
	if ts.cfg.RatePerSec > 0 && ts.bucket != nil {
		s.Burst = ts.bucket.Limit()
	}
	if ts.waitCount > 0 {
		s.MeanWaitSec = ts.waitSum / float64(ts.waitCount)
	}
	if ts.runCount > 0 {
		s.MeanRunSec = ts.runSum / float64(ts.runCount)
	}
	return s
}

// Tenants lists every tenant the engine has seen (or has configuration for),
// sorted by tenant name.
func (e *Engine) Tenants() []TenantStatus {
	e.mu.Lock()
	defer e.mu.Unlock()
	for name := range e.cfg.Tenants {
		e.tenantLocked(name) // materialize configured-but-unseen tenants
	}
	out := make([]TenantStatus, 0, len(e.tenants))
	for name, ts := range e.tenants {
		out = append(out, ts.status(e.weight(name)))
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j-1].Tenant > out[j].Tenant; j-- {
			out[j-1], out[j] = out[j], out[j-1]
		}
	}
	return out
}

// Tenant returns one tenant's accounting view. ok is false when the engine
// has neither seen nor been configured with the tenant.
func (e *Engine) Tenant(id string) (TenantStatus, bool) {
	id = canonicalTenant(id)
	e.mu.Lock()
	defer e.mu.Unlock()
	ts := e.tenants[id]
	if ts == nil {
		if _, configured := e.cfg.Tenants[id]; !configured && id != DefaultTenant {
			return TenantStatus{}, false
		}
		ts = e.tenantLocked(id)
	}
	return ts.status(e.weight(id)), true
}

// AdmissionInfo is a tenant's admission headroom, used by the HTTP layer to
// populate the X-RateLimit-* header trio on 429 responses.
type AdmissionInfo struct {
	// QueueLimit/QueueRemaining describe the tenant's queued-task quota;
	// QueueLimit is 0 when the tenant has no per-tenant cap.
	QueueLimit     int
	QueueRemaining int
	// RateLimit/RateRemaining describe the submit token bucket; RateLimit is
	// 0 when the tenant is not rate limited.
	RateLimit     int
	RateRemaining int
	// RateResetSec is the whole-second wait until the next token (at least 1
	// when RateRemaining is 0).
	RateResetSec int
}

// TenantAdmission reports a tenant's current admission headroom.
func (e *Engine) TenantAdmission(tenant string) AdmissionInfo {
	e.mu.Lock()
	defer e.mu.Unlock()
	ts := e.tenantLocked(canonicalTenant(tenant))
	info := AdmissionInfo{}
	if ts.cfg.MaxQueued > 0 {
		info.QueueLimit = ts.cfg.MaxQueued
		if rem := ts.cfg.MaxQueued - ts.queued; rem > 0 {
			info.QueueRemaining = rem
		}
	}
	if ts.bucket != nil {
		now := e.now()
		info.RateLimit = ts.bucket.Limit()
		info.RateRemaining = ts.bucket.Remaining(now)
		if wait := ts.bucket.RetryAfter(now); wait > 0 {
			info.RateResetSec = int(wait) + 1
		}
	}
	return info
}

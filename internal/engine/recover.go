package engine

import (
	"encoding/json"
	"fmt"
	"log/slog"
	"sort"

	"repro/internal/coordination"
)

// RecoveryReport summarizes one journal replay.
type RecoveryReport struct {
	// Requeued lists tasks that were accepted but never started; they
	// re-entered the queue from their journaled envelope.
	Requeued []string `json:"requeued,omitempty"`
	// Resumed lists tasks that were mid-enactment with a coordination
	// checkpoint; they continue from the latest checkpoint.
	Resumed []string `json:"resumed,omitempty"`
	// Restarted lists tasks that were mid-enactment with no checkpoint yet;
	// they run again from the beginning.
	Restarted []string `json:"restarted,omitempty"`
	// Terminal counts journals whose task had already finished; their
	// records are restored for lookups but nothing re-runs.
	Terminal int `json:"terminal"`
}

// Total returns how many tasks re-entered the queue.
func (r RecoveryReport) Total() int {
	return len(r.Requeued) + len(r.Resumed) + len(r.Restarted)
}

// replayState is the effective state of one task after folding its journal.
type replayState struct {
	id           string
	seq          int64
	attempt      int
	priority     Priority
	tenant       string
	status       string
	err          string
	reason       string
	envelope     *TaskEnvelope
	checkpointed bool
}

// Recover replays every task journal in the storage service and rebuilds the
// engine's state: terminal tasks get their records restored for lookups,
// accepted-but-never-started tasks are re-enqueued in admission order, and
// started tasks re-enter the queue flagged to resume from their latest
// coordination checkpoint (or from scratch if none was written). Call it
// after core loads a store file and before traffic arrives; tasks the engine
// already tracks are skipped, so calling it on a warm engine is harmless.
func (e *Engine) Recover() (RecoveryReport, error) {
	return e.RecoverOwned(nil)
}

// RecoverOwned is Recover restricted to the tasks an ownership filter
// claims: a journal is replayed only when own(tenant, taskID) is true (nil
// means everything). A multi-node cluster sharing one store uses it for
// failover — each survivor replays exactly the partition the consistent-
// hash ring now assigns to it, so a dead peer's tasks move to one new
// owner and nothing is enacted twice. Tasks the engine already tracks are
// skipped either way, so a warm engine only picks up newly owned work.
func (e *Engine) RecoverOwned(own func(tenant, taskID string) bool) (RecoveryReport, error) {
	var report RecoveryReport
	keys := e.store.Keys(JournalPrefix)
	states := make([]*replayState, 0, len(keys))
	for _, key := range keys {
		id := key[len(JournalPrefix):]
		e.mu.Lock()
		_, known := e.records[id]
		e.mu.Unlock()
		if known || id == "" {
			continue
		}
		recs, err := ReadJournal(e.store, id)
		if err != nil {
			return report, fmt.Errorf("engine: recover: %w", err)
		}
		st := replay(id, recs)
		if st == nil {
			continue
		}
		if own != nil && !own(canonicalTenant(st.tenant), st.id) {
			continue
		}
		states = append(states, st)
	}
	// Journal keys come back in map order; admission order is the Seq
	// stamped on accepted/snapshot records.
	sort.Slice(states, func(i, j int) bool { return states[i].seq < states[j].seq })

	for _, st := range states {
		rec := &record{
			id:       st.id,
			seq:      st.seq,
			priority: st.priority,
			tenant:   st.tenant,
			attempt:  st.attempt,
			status:   st.status,
			err:      st.err,
			reason:   st.reason,
			env:      st.envelope,
		}
		if terminal(st.status) {
			// Finished before the crash: restore the record so GETs still
			// answer, but nothing re-runs.
			e.mu.Lock()
			e.records[st.id] = rec
			if st.seq > e.seq {
				e.seq = st.seq
			}
			e.finished = append(e.finished, st.id)
			e.mu.Unlock()
			report.Terminal++
			continue
		}
		if st.envelope == nil {
			// A journal with no envelope cannot be re-run; surface it
			// instead of silently dropping the task.
			return report, fmt.Errorf("engine: recover: journal of task %s has no envelope", st.id)
		}
		switch {
		case st.status == StatusQueued:
			e.enqueueRecovered(rec)
			e.mRequeued.Inc()
			report.Requeued = append(report.Requeued, st.id)
			e.tel.TaskTrace(st.id).Span("recovered", "", "re-enqueued: accepted but never started")
			e.log.Info("recovery re-enqueued task", slog.String("task", st.id))
		case st.checkpointed:
			snap, err := e.loadCheckpoint(st.id)
			if err != nil {
				return report, fmt.Errorf("engine: recover task %s: %w", st.id, err)
			}
			rec.resume = snap
			e.enqueueRecovered(rec)
			e.mResumed.Inc()
			report.Resumed = append(report.Resumed, st.id)
			e.tel.TaskTrace(st.id).Span("recovered", "",
				fmt.Sprintf("resuming from checkpoint after %d executions", snap.Executed))
			e.log.Info("recovery resumed task from checkpoint",
				slog.String("task", st.id), slog.Int("executed", snap.Executed))
		default:
			e.enqueueRecovered(rec)
			e.mRestarted.Inc()
			report.Restarted = append(report.Restarted, st.id)
			e.tel.TaskTrace(st.id).Span("recovered", "", "restarting: started but no checkpoint written")
			e.log.Info("recovery restarted task", slog.String("task", st.id))
		}
	}
	return report, nil
}

// replay folds a task's journal records into its effective state; nil when
// the journal is empty.
func replay(id string, recs []JournalRecord) *replayState {
	if len(recs) == 0 {
		return nil
	}
	st := &replayState{id: id}
	for _, r := range recs {
		switch r.Event {
		case EventAccepted:
			st.status = StatusQueued
			st.seq = r.Seq
			st.priority = Priority(r.Priority)
			st.tenant = r.Tenant
			st.envelope = r.Task
		case EventStarted:
			st.status = StatusRunning
			st.attempt = r.Attempt
		case EventCheckpointed:
			st.checkpointed = true
		case EventCompleted:
			st.status = StatusCompleted
			st.err = r.Error
		case EventFailed:
			st.status = StatusFailed
			st.err = r.Error
		case EventCancelled:
			st.status = StatusCancelled
			st.err = r.Error
		case EventSnapshot:
			st.status = r.Status
			st.seq = r.Seq
			st.attempt = r.Attempt
			st.priority = Priority(r.Priority)
			st.tenant = r.Tenant
			st.err = r.Error
			st.reason = r.Reason
			st.envelope = r.Task
			st.checkpointed = r.CheckpointVersion > 0
		}
	}
	return st
}

// loadCheckpoint reads the latest coordination checkpoint for a task through
// the engine's storage handle.
func (e *Engine) loadCheckpoint(taskID string) (*coordination.CheckpointData, error) {
	raw, _, found, err := e.store.Get(coordination.CheckpointKey(taskID), 0)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint: %w", err)
	}
	if !found {
		return nil, fmt.Errorf("journaled checkpoint missing from store")
	}
	var snap coordination.CheckpointData
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, fmt.Errorf("checkpoint corrupt: %w", err)
	}
	return &snap, nil
}

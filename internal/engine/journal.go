package engine

import (
	"encoding/json"
	"fmt"

	"repro/internal/coordination"
	"repro/internal/expr"
	"repro/internal/workflow"
)

// Journal event names. Every lifecycle transition of a task appends one
// record to the task's journal key before (write-ahead) or immediately after
// the transition takes effect, so a crashed engine can reconstruct where
// every task stood from the persistent storage service alone.
const (
	EventAccepted     = "accepted"     // admitted to the queue; carries the full task envelope
	EventStarted      = "started"      // a worker began attempt N
	EventCheckpointed = "checkpointed" // the coordinator wrote checkpoint version V
	EventCompleted    = "completed"    // legacy terminal append; recovery still honors it
	EventFailed       = "failed"       // legacy terminal append; recovery still honors it
	EventCancelled    = "cancelled"    // legacy terminal append; recovery still honors it
	EventSnapshot     = "snapshot"     // compaction record replacing older history; terminal
	//                                    transitions write this directly (status + error), so a
	//                                    finished task's journal is exactly one snapshot record
)

// JournalKey returns the storage key of a task's journal. Each journal
// record is one version of this key, so the storage service's versioning is
// the append-only log.
func JournalKey(taskID string) string { return "journal/" + taskID }

// JournalPrefix is the storage key prefix shared by all task journals.
const JournalPrefix = "journal/"

// JournalRecord is one append-only lifecycle record.
type JournalRecord struct {
	Event  string `json:"event"`
	TaskID string `json:"taskId"`
	// Seq is the admission sequence number (on accepted/snapshot records);
	// recovery re-enqueues tasks in this order.
	Seq int64 `json:"seq,omitempty"`
	// Attempt is the 1-based execution attempt (on started records and on
	// terminal records).
	Attempt  int    `json:"attempt,omitempty"`
	Priority int    `json:"priority,omitempty"`
	Tenant   string `json:"tenant,omitempty"`
	Error    string `json:"error,omitempty"`
	// CheckpointVersion is the coordination checkpoint version (on
	// checkpointed records and snapshots of started tasks).
	CheckpointVersion int `json:"checkpointVersion,omitempty"`
	// Task is the serialized submission (on accepted records and on
	// snapshots of non-terminal tasks); recovery re-creates the workflow
	// task from it.
	Task *TaskEnvelope `json:"task,omitempty"`
	// Status is the effective task status (on snapshot records only).
	Status string `json:"status,omitempty"`
	// Reason refines a terminal status (budget_exceeded, deadline_missed);
	// empty on ordinary outcomes, so pre-existing journals replay unchanged.
	Reason string `json:"reason,omitempty"`
}

// TaskEnvelope is the durable, self-contained form of a submission: enough
// to rebuild the workflow.Task (and its resolved policy) after a crash.
type TaskEnvelope struct {
	ID           string               `json:"id"`
	Name         string               `json:"name,omitempty"`
	NeedPlanning bool                 `json:"needPlanning,omitempty"`
	Process      json.RawMessage      `json:"process,omitempty"`
	Items        []EnvelopeItem       `json:"items,omitempty"`
	Goal         []string             `json:"goal,omitempty"`
	ResultSet    []string             `json:"resultSet,omitempty"`
	Constraints  map[string]string    `json:"constraints,omitempty"`
	Deadline     float64              `json:"deadline,omitempty"`
	Budget       float64              `json:"budget,omitempty"`
	HardDeadline bool                 `json:"hardDeadline,omitempty"`
	Policy       *coordination.Policy `json:"policy,omitempty"`
}

// EnvelopeItem is one serialized initial data item.
type EnvelopeItem struct {
	Name  string                `json:"name"`
	Props map[string]expr.Value `json:"props"`
}

// envelope serializes a submission for the journal.
func envelope(task *workflow.Task, pol *coordination.Policy) (*TaskEnvelope, error) {
	env := &TaskEnvelope{
		ID:           task.ID,
		Name:         task.Name,
		NeedPlanning: task.NeedPlanning,
		Policy:       pol,
	}
	if task.Process != nil {
		raw, err := task.Process.MarshalJSON()
		if err != nil {
			return nil, fmt.Errorf("engine: marshal process of task %s: %w", task.ID, err)
		}
		env.Process = raw
	}
	if c := task.Case; c != nil {
		env.Goal = append([]string(nil), c.Goal.Conditions...)
		env.ResultSet = append([]string(nil), c.ResultSet...)
		env.Deadline = c.Deadline
		env.Budget = c.Budget
		env.HardDeadline = c.HardDeadline
		if len(c.Constraints) > 0 {
			env.Constraints = make(map[string]string, len(c.Constraints))
			for k, v := range c.Constraints {
				env.Constraints[k] = v
			}
		}
		for _, item := range c.InitialData {
			env.Items = append(env.Items, EnvelopeItem{Name: item.Name, Props: item.Props})
		}
	}
	return env, nil
}

// task rebuilds the workflow task from its durable envelope.
func (te *TaskEnvelope) task() (*workflow.Task, error) {
	c := workflow.NewCase(te.ID, te.Name)
	c.Goal = workflow.NewGoal(te.Goal...)
	c.ResultSet = append([]string(nil), te.ResultSet...)
	c.Deadline = te.Deadline
	c.Budget = te.Budget
	c.HardDeadline = te.HardDeadline
	for k, v := range te.Constraints {
		c.SetConstraint(k, v)
	}
	for _, it := range te.Items {
		c.AddData(&workflow.DataItem{Name: it.Name, Props: it.Props})
	}
	task := &workflow.Task{ID: te.ID, Name: te.Name, Case: c, NeedPlanning: te.NeedPlanning}
	if len(te.Process) > 0 {
		pd, err := workflow.DecodeProcess(te.Process)
		if err != nil {
			return nil, fmt.Errorf("engine: journaled process of task %s corrupt: %w", te.ID, err)
		}
		task.Process = pd
	}
	return task, nil
}

// maxJournalVersions bounds a task's journal length before mid-run
// compaction folds the history into one snapshot record (long enactments
// append one "checkpointed" record per dispatch batch).
const maxJournalVersions = 64

// journalAppend appends one record to the task's journal — on durable
// backends it blocks until the record's group-commit batch is fsynced — and
// returns the new journal depth. The caller must NOT hold e.mu: the append
// can wait on an fsync, and concurrent appends are exactly what group commit
// batches together. Per-task journal keys have a single writer at any time
// (admission before the task is queued, then its worker), so appends to one
// key never race.
func (e *Engine) journalAppend(rec JournalRecord) (int, error) {
	data, err := json.Marshal(rec)
	if err != nil {
		// Records are built from plain serializable fields; a marshal
		// failure is a programming error, not a runtime condition.
		panic(fmt.Sprintf("engine: journal record marshal: %v", err))
	}
	ver, err := e.store.Put(JournalKey(rec.TaskID), data)
	if err != nil {
		return 0, fmt.Errorf("engine: journal append for task %s: %w", rec.TaskID, err)
	}
	e.mJournalRecords.Inc()
	return ver, nil
}

// journalAppendAsync appends one record without waiting for its group-commit
// batch to reach disk; the record's position in the log is still fixed here.
// For records whose loss a crash already tolerates (the "started" marker).
func (e *Engine) journalAppendAsync(rec JournalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		panic(fmt.Sprintf("engine: journal record marshal: %v", err))
	}
	if _, err := e.store.PutAsync(JournalKey(rec.TaskID), data); err != nil {
		return fmt.Errorf("engine: journal append for task %s: %w", rec.TaskID, err)
	}
	e.mJournalRecords.Inc()
	return nil
}

// compact replaces a task's journal history with a single snapshot record
// describing its effective state. Terminal tasks compact to a bare status;
// live tasks keep their envelope and checkpoint cursor so recovery still
// works from the compacted form. The whole compaction is one Replace — one
// store record, one group-commit slot — so a crash can never land between
// discarding the history and writing the snapshot, which a Delete+Put pair
// (separate fsync batches) could not guarantee.
func (e *Engine) compact(snapshot JournalRecord) error {
	snapshot.Event = EventSnapshot
	data, err := json.Marshal(snapshot)
	if err != nil {
		panic(fmt.Sprintf("engine: journal snapshot marshal: %v", err))
	}
	if _, err := e.store.Replace(JournalKey(snapshot.TaskID), data); err != nil {
		return fmt.Errorf("engine: journal compact for task %s: %w", snapshot.TaskID, err)
	}
	e.mJournalCompactions.Inc()
	return nil
}

// ReadJournal returns every journal record of a task in append order,
// reading directly from a storage backend. Used by recovery, tests, and
// operational tooling.
func ReadJournal(store storageAPI, taskID string) ([]JournalRecord, error) {
	_, latest, found, err := store.Get(JournalKey(taskID), 0)
	if err != nil {
		return nil, fmt.Errorf("engine: journal of task %s: %w", taskID, err)
	}
	if !found {
		return nil, nil
	}
	out := make([]JournalRecord, 0, latest)
	for v := 1; v <= latest; v++ {
		raw, _, ok, err := store.Get(JournalKey(taskID), v)
		if err != nil {
			return nil, fmt.Errorf("engine: journal of task %s version %d: %w", taskID, v, err)
		}
		if !ok {
			return nil, fmt.Errorf("engine: journal of task %s missing version %d", taskID, v)
		}
		var rec JournalRecord
		if err := json.Unmarshal(raw, &rec); err != nil {
			return nil, fmt.Errorf("engine: journal of task %s version %d corrupt: %w", taskID, v, err)
		}
		out = append(out, rec)
	}
	return out, nil
}

// Package expr implements the small condition-expression language used
// throughout the grid environment: by process-description transition
// conditions, by activity pre- and postconditions (the C1..C8 conditions of
// the virus-reconstruction case study), and by case-description constraints
// such as Cons1.
//
// The grammar follows the BNF of the paper's Section 2:
//
//	condition  := or
//	or         := and { "or" and }
//	and        := not { "and" not }
//	not        := [ "not" ] primary
//	primary    := comparison | "(" condition ")" | "true" | "false"
//	comparison := ref op literal | ref op ref
//	ref        := Ident "." Ident          // e.g. D10.Classification
//	op         := "<" | ">" | "=" | "!=" | "<=" | ">="
//	literal    := String | Number
//
// Property names are the data attributes of the paper's ontology (Figure 12):
// Classification, Size, Location, Value, Format, Type, Owner, and so on.
package expr

import (
	"fmt"
	"strconv"
)

// Kind discriminates the dynamic type of a Value.
type Kind int

// The kinds of values a condition expression can manipulate.
const (
	KindString Kind = iota
	KindNumber
	KindBool
)

func (k Kind) String() string {
	switch k {
	case KindString:
		return "string"
	case KindNumber:
		return "number"
	case KindBool:
		return "bool"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Value is a dynamically typed scalar: the value of a data-item property or
// of a literal in a condition. The zero Value is the empty string.
type Value struct {
	kind Kind
	s    string
	n    float64
	b    bool
}

// String constructs a string Value.
func String(s string) Value { return Value{kind: KindString, s: s} }

// Number constructs a numeric Value.
func Number(n float64) Value { return Value{kind: KindNumber, n: n} }

// Bool constructs a boolean Value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Kind reports the dynamic kind of v.
func (v Value) Kind() Kind { return v.kind }

// Str returns the string payload; for non-string kinds it returns the
// canonical textual form.
func (v Value) Str() string {
	switch v.kind {
	case KindString:
		return v.s
	case KindNumber:
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return ""
}

// Num returns the numeric payload and whether the value is (or parses as) a
// number. String values that look like numbers coerce, matching the paper's
// untyped slot values (e.g. D10.value > 8 where the value arrives as text).
func (v Value) Num() (float64, bool) {
	switch v.kind {
	case KindNumber:
		return v.n, true
	case KindString:
		n, err := strconv.ParseFloat(v.s, 64)
		return n, err == nil
	case KindBool:
		if v.b {
			return 1, true
		}
		return 0, true
	}
	return 0, false
}

// AsBool returns the boolean payload; non-bool kinds report false, true for
// non-empty/non-zero.
func (v Value) AsBool() bool {
	switch v.kind {
	case KindBool:
		return v.b
	case KindNumber:
		return v.n != 0
	case KindString:
		return v.s != ""
	}
	return false
}

// Equal reports deep equality with numeric coercion: "8" equals 8.
func (v Value) Equal(w Value) bool {
	if v.kind == w.kind {
		switch v.kind {
		case KindString:
			return v.s == w.s
		case KindNumber:
			return v.n == w.n
		case KindBool:
			return v.b == w.b
		}
	}
	vn, vok := v.Num()
	wn, wok := w.Num()
	if vok && wok {
		return vn == wn
	}
	return v.Str() == w.Str()
}

// Compare returns -1, 0, or +1 ordering v against w. Numbers (and strings
// that parse as numbers) order numerically; everything else orders
// lexicographically on the textual form.
func (v Value) Compare(w Value) int {
	vn, vok := v.Num()
	wn, wok := w.Num()
	if vok && wok {
		switch {
		case vn < wn:
			return -1
		case vn > wn:
			return 1
		default:
			return 0
		}
	}
	vs, ws := v.Str(), w.Str()
	switch {
	case vs < ws:
		return -1
	case vs > ws:
		return 1
	default:
		return 0
	}
}

// GoString makes test failures readable.
func (v Value) GoString() string {
	switch v.kind {
	case KindString:
		return strconv.Quote(v.s)
	case KindNumber:
		return strconv.FormatFloat(v.n, 'g', -1, 64)
	case KindBool:
		return strconv.FormatBool(v.b)
	}
	return "?"
}

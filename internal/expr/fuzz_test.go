package expr

import (
	"testing"
	"unicode/utf8"
)

// FuzzParse checks the parser never panics and that anything it accepts
// prints to a form it accepts again, evaluating identically. Run the seed
// corpus in normal tests; explore with `go test -fuzz=FuzzParse ./internal/expr`.
func FuzzParse(f *testing.F) {
	seeds := []string{
		``,
		`true`,
		`D10.value > 8`,
		`A.Classification = "POD-Parameter" and B.Classification = "2D Image"`,
		`not (x.y = 1) or z.w <= -3.5`,
		`a.b <> c.d`,
		`((a.b = 1))`,
		`"quoted" = a.b`,
		`ident-with-dash.prop = other`,
		`a.b = 1 and`,
		`()`,
		`D10.`,
		`🙂.x = 1`,
		"a.b = \"unterminated",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	env := MapEnv{"D10": {"value": Number(9)}, "a": {"b": Number(1)}}
	f.Fuzz(func(t *testing.T, src string) {
		if !utf8.ValidString(src) {
			return
		}
		node, err := Parse(src)
		if err != nil {
			return // rejection is fine; panics are not
		}
		printed := node.String()
		again, err := Parse(printed)
		if err != nil {
			t.Fatalf("accepted %q, printed %q, re-parse failed: %v", src, printed, err)
		}
		if node.Eval(env) != again.Eval(env) {
			t.Fatalf("evaluation changed across print/parse: %q -> %q", src, printed)
		}
	})
}

package expr

import "strconv"

// Parse parses a condition expression. The empty (or all-whitespace) source
// parses to the constant true, matching the paper's convention that an
// unconditioned transition always fires.
func Parse(src string) (Node, error) {
	p := &parser{lex: lexer{src: src}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if p.tok.kind == tokEOF {
		return &Const{Val: true}, nil
	}
	n, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, p.lex.errorf(p.tok.pos, "unexpected %s after expression", p.tok.kind)
	}
	return n, nil
}

// MustParse is Parse that panics on error; for use with known-good constants.
func MustParse(src string) Node {
	n, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return n
}

// Eval parses and evaluates src against env in one step.
func Eval(src string, env Env) (bool, error) {
	n, err := Parse(src)
	if err != nil {
		return false, err
	}
	return n.Eval(env), nil
}

type parser struct {
	lex lexer
	tok token
}

func (p *parser) advance() error {
	t, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *parser) parseOr() (Node, error) {
	first, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	terms := []Node{first}
	for p.tok.kind == tokOr {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return &Or{Terms: terms}, nil
}

func (p *parser) parseAnd() (Node, error) {
	first, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	terms := []Node{first}
	for p.tok.kind == tokAnd {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		terms = append(terms, t)
	}
	if len(terms) == 1 {
		return first, nil
	}
	return &And{Terms: terms}, nil
}

func (p *parser) parseNot() (Node, error) {
	if p.tok.kind == tokNot {
		if err := p.advance(); err != nil {
			return nil, err
		}
		t, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &Not{Term: t}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Node, error) {
	switch p.tok.kind {
	case tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		n, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.tok.kind != tokRParen {
			return nil, p.lex.errorf(p.tok.pos, "expected ')', found %s", p.tok.kind)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return n, nil
	case tokTrue:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Const{Val: true}, nil
	case tokFalse:
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &Const{Val: false}, nil
	case tokIdent, tokNumber, tokString:
		return p.parseComparison()
	default:
		return nil, p.lex.errorf(p.tok.pos, "expected condition, found %s", p.tok.kind)
	}
}

func (p *parser) parseComparison() (Node, error) {
	left, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokOp {
		return nil, p.lex.errorf(p.tok.pos, "expected comparison operator, found %s", p.tok.kind)
	}
	op, err := parseOp(p.tok.text)
	if err != nil {
		return nil, p.lex.errorf(p.tok.pos, "%v", err)
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	right, err := p.parseOperand()
	if err != nil {
		return nil, err
	}
	return &Cmp{Left: left, Op: op, Right: right}, nil
}

func (p *parser) parseOperand() (Operand, error) {
	switch p.tok.kind {
	case tokNumber:
		n, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return Operand{}, p.lex.errorf(p.tok.pos, "bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		return Operand{Lit: Number(n)}, nil
	case tokString:
		s := p.tok.text
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		return Operand{Lit: String(s)}, nil
	case tokIdent:
		obj := p.tok.text
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		if p.tok.kind != tokDot {
			// A bare identifier is a string literal; this keeps conditions
			// like Classification = POD-Parameter readable without quotes.
			return Operand{Lit: String(obj)}, nil
		}
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		if p.tok.kind != tokIdent {
			return Operand{}, p.lex.errorf(p.tok.pos, "expected property name after '.', found %s", p.tok.kind)
		}
		prop := p.tok.text
		if err := p.advance(); err != nil {
			return Operand{}, err
		}
		return Operand{IsRef: true, Ref: Ref{Obj: obj, Prop: prop}}, nil
	default:
		return Operand{}, p.lex.errorf(p.tok.pos, "expected operand, found %s", p.tok.kind)
	}
}

func parseOp(text string) (Op, error) {
	switch text {
	case "=":
		return OpEq, nil
	case "!=":
		return OpNe, nil
	case "<":
		return OpLt, nil
	case ">":
		return OpGt, nil
	case "<=":
		return OpLe, nil
	case ">=":
		return OpGe, nil
	}
	return 0, &SyntaxError{Msg: "unknown operator " + text}
}

package expr

import (
	"fmt"
	"strings"
)

// Env resolves property references during evaluation. Lookup returns the
// value of property prop on the object named obj (typically a data item such
// as D10, or a formal parameter such as A), and whether it exists.
type Env interface {
	Lookup(obj, prop string) (Value, bool)
}

// MapEnv is an Env backed by nested maps: object name -> property -> value.
type MapEnv map[string]map[string]Value

// Lookup implements Env.
func (m MapEnv) Lookup(obj, prop string) (Value, bool) {
	props, ok := m[obj]
	if !ok {
		return Value{}, false
	}
	v, ok := props[prop]
	return v, ok
}

// Op is a comparison operator.
type Op int

// Comparison operators. The paper's grammar lists <, >, =; we add the
// obvious completions.
const (
	OpEq Op = iota
	OpNe
	OpLt
	OpGt
	OpLe
	OpGe
)

func (o Op) String() string {
	switch o {
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpLt:
		return "<"
	case OpGt:
		return ">"
	case OpLe:
		return "<="
	case OpGe:
		return ">="
	}
	return "?"
}

// Node is a parsed condition expression.
type Node interface {
	// Eval evaluates the node against env. A missing reference is not an
	// error: a comparison over a missing property is simply false, matching
	// the paper's semantics where a precondition on absent data fails.
	Eval(env Env) bool
	// Refs appends every (object, property) reference in the subtree to dst.
	Refs(dst []Ref) []Ref
	fmt.Stringer
}

// Ref is a property reference obj.prop.
type Ref struct {
	Obj  string
	Prop string
}

func (r Ref) String() string { return r.Obj + "." + r.Prop }

// Lit wraps a literal value as an operand.
type Lit struct{ Val Value }

// Operand is either a Ref or a Lit.
type Operand struct {
	IsRef bool
	Ref   Ref
	Lit   Value
}

func (o Operand) String() string {
	if o.IsRef {
		return o.Ref.String()
	}
	if o.Lit.Kind() == KindString {
		return fmt.Sprintf("%q", o.Lit.Str())
	}
	return o.Lit.Str()
}

// resolve returns the operand's value under env.
func (o Operand) resolve(env Env) (Value, bool) {
	if !o.IsRef {
		return o.Lit, true
	}
	if env == nil {
		return Value{}, false
	}
	return env.Lookup(o.Ref.Obj, o.Ref.Prop)
}

// Cmp is a comparison node: Left Op Right.
type Cmp struct {
	Left  Operand
	Op    Op
	Right Operand
}

// Eval implements Node.
func (c *Cmp) Eval(env Env) bool {
	l, ok := c.Left.resolve(env)
	if !ok {
		return false
	}
	r, ok := c.Right.resolve(env)
	if !ok {
		return false
	}
	switch c.Op {
	case OpEq:
		return l.Equal(r)
	case OpNe:
		return !l.Equal(r)
	case OpLt:
		return l.Compare(r) < 0
	case OpGt:
		return l.Compare(r) > 0
	case OpLe:
		return l.Compare(r) <= 0
	case OpGe:
		return l.Compare(r) >= 0
	}
	return false
}

// Refs implements Node.
func (c *Cmp) Refs(dst []Ref) []Ref {
	if c.Left.IsRef {
		dst = append(dst, c.Left.Ref)
	}
	if c.Right.IsRef {
		dst = append(dst, c.Right.Ref)
	}
	return dst
}

func (c *Cmp) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is a conjunction of one or more terms.
type And struct{ Terms []Node }

// Eval implements Node.
func (a *And) Eval(env Env) bool {
	for _, t := range a.Terms {
		if !t.Eval(env) {
			return false
		}
	}
	return true
}

// Refs implements Node.
func (a *And) Refs(dst []Ref) []Ref {
	for _, t := range a.Terms {
		dst = t.Refs(dst)
	}
	return dst
}

func (a *And) String() string { return joinTerms(a.Terms, " and ") }

// Or is a disjunction of one or more terms.
type Or struct{ Terms []Node }

// Eval implements Node.
func (o *Or) Eval(env Env) bool {
	for _, t := range o.Terms {
		if t.Eval(env) {
			return true
		}
	}
	return false
}

// Refs implements Node.
func (o *Or) Refs(dst []Ref) []Ref {
	for _, t := range o.Terms {
		dst = t.Refs(dst)
	}
	return dst
}

func (o *Or) String() string { return joinTerms(o.Terms, " or ") }

// Not negates its operand.
type Not struct{ Term Node }

// Eval implements Node.
func (n *Not) Eval(env Env) bool { return !n.Term.Eval(env) }

// Refs implements Node.
func (n *Not) Refs(dst []Ref) []Ref { return n.Term.Refs(dst) }

func (n *Not) String() string { return "not (" + n.Term.String() + ")" }

// Const is a constant truth value (the parse of "true"/"false" and of the
// empty condition, which is vacuously true).
type Const struct{ Val bool }

// Eval implements Node.
func (c *Const) Eval(Env) bool { return c.Val }

// Refs implements Node.
func (c *Const) Refs(dst []Ref) []Ref { return dst }

func (c *Const) String() string {
	if c.Val {
		return "true"
	}
	return "false"
}

func joinTerms(terms []Node, sep string) string {
	parts := make([]string, len(terms))
	for i, t := range terms {
		s := t.String()
		if needsParens(t) {
			s = "(" + s + ")"
		}
		parts[i] = s
	}
	return strings.Join(parts, sep)
}

func needsParens(n Node) bool {
	switch n.(type) {
	case *And, *Or:
		return true
	}
	return false
}

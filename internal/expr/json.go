package expr

import (
	"encoding/json"
	"fmt"
)

// jsonValue is the interchange form of a Value.
type jsonValue struct {
	K string  `json:"k"`
	S string  `json:"s,omitempty"`
	N float64 `json:"n,omitempty"`
	B bool    `json:"b,omitempty"`
}

// MarshalJSON implements json.Marshaler, so data-item properties can be
// checkpointed by the coordination service.
func (v Value) MarshalJSON() ([]byte, error) {
	jv := jsonValue{}
	switch v.kind {
	case KindString:
		jv.K, jv.S = "s", v.s
	case KindNumber:
		jv.K, jv.N = "n", v.n
	case KindBool:
		jv.K, jv.B = "b", v.b
	default:
		return nil, fmt.Errorf("expr: cannot marshal value of kind %v", v.kind)
	}
	return json.Marshal(jv)
}

// UnmarshalJSON implements json.Unmarshaler.
func (v *Value) UnmarshalJSON(data []byte) error {
	var jv jsonValue
	if err := json.Unmarshal(data, &jv); err != nil {
		return err
	}
	switch jv.K {
	case "s":
		*v = String(jv.S)
	case "n":
		*v = Number(jv.N)
	case "b":
		*v = Bool(jv.B)
	default:
		return fmt.Errorf("expr: unknown value kind %q", jv.K)
	}
	return nil
}

package expr

import (
	"strings"
	"testing"
	"testing/quick"
)

func env() MapEnv {
	return MapEnv{
		"D10": {
			"Classification": String("Resolution File"),
			"value":          Number(9),
			"Size":           Number(1500),
		},
		"A": {"Classification": String("POD-Parameter")},
		"B": {"Classification": String("2D Image"), "Size": String("1.5")},
	}
}

func TestParseAndEval(t *testing.T) {
	tests := []struct {
		src  string
		want bool
	}{
		{`D10.Classification = "Resolution File"`, true},
		{`D10.Classification = "3D Model"`, false},
		{`D10.value > 8`, true},
		{`D10.value > 9`, false},
		{`D10.value >= 9`, true},
		{`D10.value < 10`, true},
		{`D10.value <= 8`, false},
		{`D10.value != 8`, true},
		{`D10.value <> 8`, true},
		{`D10.value == 9`, true},
		{`A.Classification = "POD-Parameter" and B.Classification = "2D Image"`, true},
		{`A.Classification = "POD-Parameter" and B.Classification = "3D Model"`, false},
		{`A.Classification = "3D Model" or B.Classification = "2D Image"`, true},
		{`not (A.Classification = "3D Model")`, true},
		{`not A.Classification = "POD-Parameter"`, false},
		{`true`, true},
		{`false`, false},
		{``, true},
		{`   `, true},
		{`(D10.value > 8 and D10.value < 10) or false`, true},
		// Missing object or property: comparison is false.
		{`Z9.Classification = "x"`, false},
		{`D10.Missing = "x"`, false},
		{`not Z9.Classification = "x"`, true},
		// Bare identifiers act as string literals.
		{`D10.Classification = Resolution-File or D10.value = 9`, true},
		// Numeric coercion of string-valued slots.
		{`B.Size = 1.5`, true},
		{`B.Size > 1`, true},
		// Ref-to-ref comparison.
		{`D10.Size > B.Size`, true},
		{`A.Classification = B.Classification`, false},
	}
	for _, tt := range tests {
		got, err := Eval(tt.src, env())
		if err != nil {
			t.Errorf("Eval(%q) error: %v", tt.src, err)
			continue
		}
		if got != tt.want {
			t.Errorf("Eval(%q) = %v, want %v", tt.src, got, tt.want)
		}
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		`D10.`,
		`D10.value >`,
		`D10.value ! 8`,
		`(D10.value > 8`,
		`D10.value > 8 )`,
		`"unterminated`,
		`D10.value & 8`,
		`and`,
		`D10.value > 8 extra.ref = 1`,
		`= 8`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestSyntaxErrorMessage(t *testing.T) {
	_, err := Parse(`D10.value ? 8`)
	if err == nil {
		t.Fatal("expected error")
	}
	se, ok := err.(*SyntaxError)
	if !ok {
		t.Fatalf("error type = %T, want *SyntaxError", err)
	}
	if se.Pos != 10 {
		t.Errorf("Pos = %d, want 10", se.Pos)
	}
	if !strings.Contains(se.Error(), "offset 10") {
		t.Errorf("Error() = %q, missing offset", se.Error())
	}
}

func TestStringRoundTrip(t *testing.T) {
	srcs := []string{
		`D10.Classification = "Resolution File"`,
		`D10.value > 8 and D10.value < 12`,
		`(A.x = 1 and B.y = 2) or not (C.z = 3)`,
		`A.Classification != "x" or B.t <= 4`,
	}
	for _, src := range srcs {
		n1, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		printed := n1.String()
		n2, err := Parse(printed)
		if err != nil {
			t.Fatalf("re-Parse(%q): %v", printed, err)
		}
		if n2.String() != printed {
			t.Errorf("round trip unstable: %q -> %q -> %q", src, printed, n2.String())
		}
	}
}

func TestRefs(t *testing.T) {
	n := MustParse(`A.Classification = "x" and (B.Size > 3 or not C.Type = D.Type)`)
	refs := n.Refs(nil)
	want := []Ref{
		{"A", "Classification"},
		{"B", "Size"},
		{"C", "Type"},
		{"D", "Type"},
	}
	if len(refs) != len(want) {
		t.Fatalf("got %d refs %v, want %d", len(refs), refs, len(want))
	}
	for i := range want {
		if refs[i] != want[i] {
			t.Errorf("refs[%d] = %v, want %v", i, refs[i], want[i])
		}
	}
}

func TestValueEqualCoercion(t *testing.T) {
	if !String("8").Equal(Number(8)) {
		t.Error(`String("8") should equal Number(8)`)
	}
	if String("8x").Equal(Number(8)) {
		t.Error(`String("8x") should not equal Number(8)`)
	}
	if !Bool(true).Equal(Number(1)) {
		t.Error("Bool(true) should equal Number(1) via coercion")
	}
	if !String("abc").Equal(String("abc")) {
		t.Error("identical strings should be equal")
	}
}

func TestValueCompare(t *testing.T) {
	tests := []struct {
		a, b Value
		want int
	}{
		{Number(1), Number(2), -1},
		{Number(2), Number(1), 1},
		{Number(2), Number(2), 0},
		{String("10"), String("9"), 1}, // numeric ordering wins
		{String("a"), String("b"), -1},
		{String("abc"), Number(5), -1}, // falls back to lexicographic "abc" vs "5"? no: "abc" > "5"
	}
	// Fix the last expectation: '5' < 'a' lexicographically.
	tests[len(tests)-1].want = 1
	for _, tt := range tests {
		if got := tt.a.Compare(tt.b); got != tt.want {
			t.Errorf("Compare(%#v, %#v) = %d, want %d", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestValueKindsAndAccessors(t *testing.T) {
	if String("x").Kind() != KindString || Number(1).Kind() != KindNumber || Bool(true).Kind() != KindBool {
		t.Fatal("Kind() mismatch")
	}
	if n, ok := String("3.5").Num(); !ok || n != 3.5 {
		t.Errorf("String(3.5).Num() = %v,%v", n, ok)
	}
	if _, ok := String("nope").Num(); ok {
		t.Error("String(nope).Num() should fail")
	}
	if n, ok := Bool(true).Num(); !ok || n != 1 {
		t.Errorf("Bool(true).Num() = %v,%v", n, ok)
	}
	if !Number(2).AsBool() || Number(0).AsBool() {
		t.Error("Number AsBool mismatch")
	}
	if !String("s").AsBool() || String("").AsBool() {
		t.Error("String AsBool mismatch")
	}
	if Number(2.5).Str() != "2.5" || Bool(false).Str() != "false" {
		t.Error("Str() canonical form mismatch")
	}
	for _, k := range []Kind{KindString, KindNumber, KindBool, Kind(42)} {
		if k.String() == "" {
			t.Errorf("Kind(%d).String() empty", k)
		}
	}
}

// Property: any parsed expression prints to a form that re-parses to an
// equivalent expression (same evaluation on a fixed env, same printed form).
func TestQuickPrintParseStable(t *testing.T) {
	e := env()
	f := func(obj, prop uint8, opSel uint8, num int16, neg bool) bool {
		objs := []string{"D10", "A", "B", "Z9"}
		props := []string{"Classification", "value", "Size", "Missing"}
		ops := []Op{OpEq, OpNe, OpLt, OpGt, OpLe, OpGe}
		c := &Cmp{
			Left:  Operand{IsRef: true, Ref: Ref{Obj: objs[int(obj)%len(objs)], Prop: props[int(prop)%len(props)]}},
			Op:    ops[int(opSel)%len(ops)],
			Right: Operand{Lit: Number(float64(num))},
		}
		var n Node = c
		if neg {
			n = &Not{Term: c}
		}
		printed := n.String()
		re, err := Parse(printed)
		if err != nil {
			return false
		}
		return re.Eval(e) == n.Eval(e) && re.String() == printed
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse of bad input should panic")
		}
	}()
	MustParse(`(((`)
}

func BenchmarkParse(b *testing.B) {
	src := `A.Classification = "POD-Parameter" and B.Classification = "2D Image" and (D10.value > 8 or D10.Size < 100)`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEvalParsed(b *testing.B) {
	n := MustParse(`A.Classification = "POD-Parameter" and B.Classification = "2D Image" and D10.value > 8`)
	e := env()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !n.Eval(e) {
			b.Fatal("expected true")
		}
	}
}

package expr

import (
	"fmt"
	"strings"
	"unicode"
	"unicode/utf8"
)

// tokKind classifies lexical tokens.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNumber
	tokString
	tokDot
	tokLParen
	tokRParen
	tokOp // = != < > <= >=
	tokAnd
	tokOr
	tokNot
	tokTrue
	tokFalse
)

func (k tokKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokDot:
		return "'.'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokOp:
		return "operator"
	case tokAnd:
		return "'and'"
	case tokOr:
		return "'or'"
	case tokNot:
		return "'not'"
	case tokTrue:
		return "'true'"
	case tokFalse:
		return "'false'"
	}
	return "unknown token"
}

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer produces a token stream over a condition expression.
type lexer struct {
	src string
	pos int
}

// SyntaxError describes a lexical or parse failure at a byte offset.
type SyntaxError struct {
	Src string
	Pos int
	Msg string
}

func (e *SyntaxError) Error() string {
	return fmt.Sprintf("condition syntax error at offset %d: %s (in %q)", e.Pos, e.Msg, e.Src)
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return &SyntaxError{Src: l.src, Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) next() (token, error) {
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsSpace(r) {
			break
		}
		l.pos += size
	}
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	r, size := utf8.DecodeRuneInString(l.src[l.pos:])
	switch {
	case r == '.':
		l.pos += size
		return token{kind: tokDot, text: ".", pos: start}, nil
	case r == '(':
		l.pos += size
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case r == ')':
		l.pos += size
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case r == '"' || r == '\'':
		return l.lexString(r)
	case r == '=':
		l.pos += size
		// Accept both = and == for equality.
		if strings.HasPrefix(l.src[l.pos:], "=") {
			l.pos++
		}
		return token{kind: tokOp, text: "=", pos: start}, nil
	case r == '!':
		l.pos += size
		if !strings.HasPrefix(l.src[l.pos:], "=") {
			return token{}, l.errorf(start, "expected '=' after '!'")
		}
		l.pos++
		return token{kind: tokOp, text: "!=", pos: start}, nil
	case r == '<' || r == '>':
		l.pos += size
		text := string(r)
		if strings.HasPrefix(l.src[l.pos:], "=") {
			l.pos++
			text += "="
		} else if r == '<' && strings.HasPrefix(l.src[l.pos:], ">") {
			// <> is an alternative not-equal spelling.
			l.pos++
			text = "!="
		}
		return token{kind: tokOp, text: text, pos: start}, nil
	case unicode.IsDigit(r) || (r == '-' && l.pos+size < len(l.src) && isDigitByte(l.src[l.pos+size])):
		return l.lexNumber()
	case unicode.IsLetter(r) || r == '_':
		return l.lexIdent()
	default:
		return token{}, l.errorf(start, "unexpected character %q", r)
	}
}

func isDigitByte(b byte) bool { return b >= '0' && b <= '9' }

func (l *lexer) lexString(quote rune) (token, error) {
	start := l.pos
	l.pos++ // consume opening quote
	var sb strings.Builder
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		l.pos += size
		if r == quote {
			return token{kind: tokString, text: sb.String(), pos: start}, nil
		}
		if r == '\\' && l.pos < len(l.src) {
			esc, esize := utf8.DecodeRuneInString(l.src[l.pos:])
			l.pos += esize
			switch esc {
			case 'n':
				sb.WriteRune('\n')
			case 't':
				sb.WriteRune('\t')
			default:
				sb.WriteRune(esc)
			}
			continue
		}
		sb.WriteRune(r)
	}
	return token{}, l.errorf(start, "unterminated string literal")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	seenDot := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if isDigitByte(c) {
			l.pos++
			continue
		}
		if c == '.' && !seenDot && l.pos+1 < len(l.src) && isDigitByte(l.src[l.pos+1]) {
			seenDot = true
			l.pos++
			continue
		}
		break
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) {
		r, size := utf8.DecodeRuneInString(l.src[l.pos:])
		if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' && r != '-' {
			break
		}
		l.pos += size
	}
	text := l.src[start:l.pos]
	switch strings.ToLower(text) {
	case "and":
		return token{kind: tokAnd, text: text, pos: start}, nil
	case "or":
		return token{kind: tokOr, text: text, pos: start}, nil
	case "not":
		return token{kind: tokNot, text: text, pos: start}, nil
	case "true":
		return token{kind: tokTrue, text: text, pos: start}, nil
	case "false":
		return token{kind: tokFalse, text: text, pos: start}, nil
	}
	return token{kind: tokIdent, text: text, pos: start}, nil
}

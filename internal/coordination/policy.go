package coordination

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"time"
)

// DefaultBackoffCap bounds one backoff wait (simulated seconds) when the
// policy does not set its own cap.
const DefaultBackoffCap = 300.0

// Policy is the per-task fault-tolerance policy: how often an activity is
// retried, how long the enactment backs off between attempts (in simulated
// time — no real sleeping happens), and an optional real-time deadline for
// the whole run. The zero value means "use the coordinator's defaults";
// ResolvePolicy fills the gaps.
type Policy struct {
	// MaxRetries bounds execution attempts per activity; attempts cycle
	// through the matchmade candidate list, so a retry lands on the next
	// best container before coming back around. 0 means the coordinator's
	// configured default (3).
	MaxRetries int
	// ActivityTimeout caps the accumulated backoff per activity, in
	// simulated seconds; once a further wait would exceed it the activity is
	// abandoned to re-planning. 0 means no cap.
	ActivityTimeout float64
	// BackoffBase is the first backoff wait in simulated seconds; waits
	// double per attempt up to BackoffCap and carry deterministic seeded
	// jitter. 0 disables backoff waits entirely (retries are immediate).
	BackoffBase float64
	// BackoffCap bounds a single wait; 0 means DefaultBackoffCap.
	BackoffCap float64
	// Seed feeds the jitter streams; same seed, same waits.
	Seed int64
	// Deadline, when positive, bounds the real (wall-clock) time of the
	// enactment via context cancellation.
	Deadline time.Duration
}

// Validate rejects policies with negative knobs. A nil policy is valid.
func (p *Policy) Validate() error {
	if p == nil {
		return nil
	}
	if p.MaxRetries < 0 {
		return fmt.Errorf("coordination: policy maxRetries must be >= 0, got %d", p.MaxRetries)
	}
	if p.ActivityTimeout < 0 {
		return fmt.Errorf("coordination: policy activityTimeout must be >= 0, got %g", p.ActivityTimeout)
	}
	if p.BackoffBase < 0 {
		return fmt.Errorf("coordination: policy backoffBase must be >= 0, got %g", p.BackoffBase)
	}
	if p.BackoffCap < 0 {
		return fmt.Errorf("coordination: policy backoffCap must be >= 0, got %g", p.BackoffCap)
	}
	if p.Deadline < 0 {
		return fmt.Errorf("coordination: policy deadline must be >= 0, got %s", p.Deadline)
	}
	return nil
}

// ResolvePolicy completes a (possibly nil) policy with the coordinator's
// defaults. Defaults are applied at call time, not construction time, so
// coordinators built literally in tests behave the same as New'd ones.
func (c *Coordinator) ResolvePolicy(p *Policy) Policy {
	var out Policy
	if p != nil {
		out = *p
	}
	if out.MaxRetries <= 0 {
		out.MaxRetries = c.cfg.MaxRetries
		if out.MaxRetries <= 0 {
			out.MaxRetries = 3
		}
	}
	if out.BackoffBase < 0 {
		out.BackoffBase = 0
	}
	if out.BackoffCap <= 0 {
		out.BackoffCap = DefaultBackoffCap
	}
	if out.ActivityTimeout < 0 {
		out.ActivityTimeout = 0
	}
	if out.Deadline < 0 {
		out.Deadline = 0
	}
	return out
}

// backoff returns the wait before attempt+1 in simulated seconds: the base
// doubled per prior attempt, capped, with jitter in [0.5, 1.0) of the nominal
// wait so simultaneous retries decorrelate while staying deterministic.
func (p Policy) backoff(attempt int, rng *rand.Rand) float64 {
	d := p.BackoffBase
	for i := 1; i < attempt && d < p.BackoffCap; i++ {
		d *= 2
	}
	if d > p.BackoffCap {
		d = p.BackoffCap
	}
	return d * (0.5 + 0.5*rng.Float64())
}

// retryStream derives the jitter stream for one activity visit. Seeding from
// the activity name and visit count (not a shared stream) keeps backoff waits
// independent of how concurrent batch members interleave.
func (p Policy) retryStream(activity string, visit int) *rand.Rand {
	h := fnv.New64a()
	_, _ = h.Write([]byte(activity))
	return rand.New(rand.NewSource(int64(h.Sum64()) ^ p.Seed ^ (int64(visit) << 17)))
}

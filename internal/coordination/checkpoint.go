package coordination

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"

	"repro/internal/expr"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// CheckpointData is the serialized enactment snapshot written to the
// persistent storage service after every completed end-user activity ("some
// of the computational tasks are long lasting and require checkpointing").
// It is complete: the token state, the case data state, the accounting, and
// the process description itself (in its lossless JSON form), so a
// coordinator — even a fresh one after a crash — can resume exactly where
// the enactment stopped via ResumeTask.
type CheckpointData struct {
	TaskID   string           `json:"taskId"`
	TaskName string           `json:"taskName,omitempty"`
	Executed int              `json:"executed"`
	Failures int              `json:"failures"`
	Replans  int              `json:"replans"`
	Fired    int              `json:"fired"`
	Items    []CheckpointItem `json:"items"`
	Tokens   enactState       `json:"tokens"`
	Process  json.RawMessage  `json:"process"`
	Goal     []string         `json:"goal,omitempty"`
	Deadline float64          `json:"deadline,omitempty"`
	// Budget and HardDeadline carry the case's scheduling constraints so a
	// resumed enactment keeps enforcing them; Cost below already holds the
	// accumulated spend, so resume never re-charges pre-crash executions.
	Budget       float64 `json:"budget,omitempty"`
	HardDeadline bool    `json:"hardDeadline,omitempty"`
	Time         float64 `json:"simulatedTime"`
	Wall         float64 `json:"wallClockTime"`
	Cost         float64 `json:"totalCost"`
}

// CheckpointItem is one serialized data item.
type CheckpointItem struct {
	Name  string                `json:"name"`
	Props map[string]expr.Value `json:"props"`
}

// CheckpointKey returns the storage key for a task's checkpoints.
func CheckpointKey(taskID string) string { return "checkpoint/" + taskID }

// checkpoint writes the enactment snapshot; failures are recorded in the
// trace but do not abort the enactment (checkpointing is best effort).
func (c *Coordinator) checkpoint(ctx context.Context, report *Report, task *workflow.Task, pd *workflow.ProcessDescription, state *workflow.State, goal workflow.Goal, es *enactState) {
	pdJSON, err := pd.MarshalJSON()
	if err != nil {
		report.trace("checkpoint", "", "process marshal failed: "+err.Error())
		return
	}
	snap := CheckpointData{
		TaskID:   task.ID,
		TaskName: task.Name,
		Executed: report.Executed,
		Failures: report.Failures,
		Replans:  report.Replans,
		Fired:    report.Fired,
		Tokens: enactState{
			Ready:   append([]string(nil), es.Ready...),
			Arrived: copyCounts(es.Arrived),
			Visits:  copyCounts(es.Visits),
		},
		Process:      pdJSON,
		Goal:         goal.Conditions,
		Deadline:     task.Case.Deadline,
		Budget:       task.Case.Budget,
		HardDeadline: task.Case.HardDeadline,
		Time:         report.SimulatedTime,
		Wall:         report.WallClockTime,
		Cost:         report.TotalCost,
	}
	for _, item := range state.Items() {
		snap.Items = append(snap.Items, CheckpointItem{Name: item.Name, Props: item.Props})
	}
	data, err := json.Marshal(snap)
	if err != nil {
		report.trace("checkpoint", "", "marshal failed: "+err.Error())
		return
	}
	reply, err := c.ctx.CallContext(ctx, services.StorageName, services.OntStorage,
		services.PutRequest{Key: CheckpointKey(task.ID), Value: data}, c.cfg.CallTimeout)
	if err != nil {
		report.trace("checkpoint", "", "store failed: "+err.Error())
		return
	}
	c.mCheckpoints.Inc()
	c.hCkptBytes.Observe(float64(len(data)))
	if pr, ok := reply.Content.(services.PutReply); ok {
		report.trace("checkpoint", "", fmt.Sprintf("version %d", pr.Version))
		if c.cfg.OnCheckpoint != nil {
			c.cfg.OnCheckpoint(task.ID, pr.Version)
		}
	}
}

func copyCounts(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// LoadCheckpoint fetches and decodes the latest checkpoint of a task
// directly from a storage service instance.
func LoadCheckpoint(store *services.Storage, taskID string) (*CheckpointData, error) {
	return LoadCheckpointVersion(store, taskID, 0)
}

// LoadCheckpointVersion fetches a specific checkpoint version (0 = latest).
func LoadCheckpointVersion(store *services.Storage, taskID string, version int) (*CheckpointData, error) {
	raw, _, found, err := store.Get(CheckpointKey(taskID), version)
	if err != nil {
		return nil, fmt.Errorf("coordination: reading checkpoint of task %q: %w", taskID, err)
	}
	if !found {
		return nil, fmt.Errorf("coordination: no checkpoint for task %q", taskID)
	}
	var snap CheckpointData
	if err := json.Unmarshal(raw, &snap); err != nil {
		return nil, err
	}
	return &snap, nil
}

// RestoreState rebuilds the data state recorded in a checkpoint.
func (cd *CheckpointData) RestoreState() *workflow.State {
	st := workflow.NewState()
	for _, it := range cd.Items {
		item := &workflow.DataItem{Name: it.Name, Props: it.Props}
		st.Put(item)
	}
	return st
}

// ResumeTask continues an enactment from its latest checkpoint with the
// default policy and no cancellation.
//
// Deprecated: use ResumeTaskContext.
func (c *Coordinator) ResumeTask(taskID string) (*Report, error) {
	return c.ResumeTaskContext(context.Background(), taskID, nil)
}

// ResumeTaskContext continues an enactment from its latest checkpoint in the
// storage service: the process description, data state, token positions,
// and accounting are restored, and the token game picks up at the next
// pending activity. Re-planning still works during the resumed run. A nil
// ctx behaves like context.Background(); a nil pol means defaults.
func (c *Coordinator) ResumeTaskContext(ctx context.Context, taskID string, pol *Policy) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	reply, err := c.ctx.CallContext(ctx, services.StorageName, services.OntStorage,
		services.GetRequest{Key: CheckpointKey(taskID)}, c.cfg.CallTimeout)
	if err != nil {
		return nil, err
	}
	gr, ok := reply.Content.(services.GetReply)
	if !ok || !gr.Found {
		return nil, fmt.Errorf("coordination: no checkpoint for task %q", taskID)
	}
	var snap CheckpointData
	if err := json.Unmarshal(gr.Value, &snap); err != nil {
		return nil, err
	}
	return c.resume(ctx, &snap, pol)
}

// Resume continues an enactment from an explicit checkpoint snapshot with
// the default policy and no cancellation.
//
// Deprecated: use ResumeContext.
func (c *Coordinator) Resume(snap *CheckpointData) (*Report, error) {
	return c.ResumeContext(context.Background(), snap, nil)
}

// ResumeContext continues an enactment from an explicit checkpoint snapshot.
func (c *Coordinator) ResumeContext(ctx context.Context, snap *CheckpointData, pol *Policy) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	return c.resume(ctx, snap, pol)
}

func (c *Coordinator) resume(ctx context.Context, snap *CheckpointData, pol *Policy) (*Report, error) {
	pd, err := workflow.DecodeProcess(snap.Process)
	if err != nil {
		return nil, fmt.Errorf("coordination: checkpointed process corrupt: %w", err)
	}
	state := snap.RestoreState()
	goal := workflow.NewGoal(snap.Goal...)
	p := c.ResolvePolicy(pol)
	if p.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Deadline)
		defer cancel()
	}
	report := &Report{
		TaskID:        snap.TaskID,
		Executed:      snap.Executed,
		Failures:      snap.Failures,
		Replans:       snap.Replans,
		Fired:         snap.Fired,
		SimulatedTime: snap.Time,
		WallClockTime: snap.Wall,
		TotalCost:     snap.Cost,
		Policy:        p,
		spans:         c.cfg.Telemetry.TaskTrace(snap.TaskID),
		span:          telemetry.SpanFromContext(ctx),
	}
	report.trace("resume", "", fmt.Sprintf("from checkpoint after %d executions", snap.Executed))
	es := &enactState{
		Ready:   append([]string(nil), snap.Tokens.Ready...),
		Arrived: copyCounts(snap.Tokens.Arrived),
		Visits:  copyCounts(snap.Tokens.Visits),
	}
	task := &workflow.Task{
		ID:      snap.TaskID,
		Name:    snap.TaskName,
		Process: pd,
		Case: &workflow.CaseDescription{
			ID: snap.TaskID, Name: snap.TaskName, Goal: goal, Deadline: snap.Deadline,
			Budget: snap.Budget, HardDeadline: snap.HardDeadline,
		},
	}
	// The ledger seeds from the restored report, so checkpointed spend and
	// wall clock are not charged a second time after a crash.
	cc := newCaseConstraints(task.Case, report)
	if err := c.enactWithReplanning(ctx, p, report, task, pd, state, goal, es, cc); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			report.Cancelled = true
			report.trace("cancel", "", err.Error())
		}
		return report, err
	}
	report.GoalFitness = goal.Fitness(state)
	report.Completed = report.GoalFitness >= 1
	report.FinalState = state
	return report, nil
}

// Package coordination implements the coordination service: the proxy that
// receives a case description and controls the enactment of the workflow
// (Section 2). The enactor is an abstract ATN machine over the process
// description graph: tokens move along transitions, flow-control activities
// gate them (Fork/Join, Choice/Merge), and end-user activities are
// dispatched to application containers located through the matchmaking
// service. Failures trigger the re-planning interaction of Figure 3;
// progress is checkpointed to the persistent storage service.
package coordination

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/agent"
	"repro/internal/pdl"
	"repro/internal/planning"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Config wires a coordinator.
type Config struct {
	Platform *agent.Platform
	// Catalog supplies the service specifications (pre/postconditions,
	// nominal times) for the end-user activities.
	Catalog *workflow.Catalog

	// MaxRetries bounds execution attempts per activity across candidate
	// containers before the activity is declared non-executable.
	MaxRetries int

	// UseContractNet acquires resources by bidding: the coordinator sends a
	// call for proposals to the brokerage's candidate containers and awards
	// execution by earliest predicted completion (ties by cost), instead of
	// asking the matchmaking service for a metadata ranking.
	UseContractNet bool
	// MaxReplans bounds re-planning rounds per task.
	MaxReplans int
	// MaxFires bounds total activity firings per enactment (loop safety).
	MaxFires int
	// CallTimeout bounds each service interaction.
	CallTimeout time.Duration

	// PostProcess, when set, is invoked after each successful end-user
	// activity with the produced data items and the per-activity visit
	// count; the virus-reconstruction scenario uses it to model resolution
	// refinement (computation steering happens here).
	PostProcess func(act *workflow.Activity, produced []*workflow.DataItem, visit int)

	// Checkpoint enables checkpointing to the storage service after every
	// completed activity.
	Checkpoint bool

	// Telemetry, when set, receives enactment metrics (see OBSERVABILITY.md)
	// and per-task span traces. Nil disables instrumentation at a nil-check
	// per record site.
	Telemetry *telemetry.Registry
}

// TraceEvent records one step of an enactment for inspection.
type TraceEvent struct {
	Kind     string // "fire", "invoke", "dispatch", "complete", "fail", "replan", "choice", "checkpoint", ...
	Activity string
	Detail   string
}

// Report summarizes a finished enactment.
type Report struct {
	TaskID        string
	Completed     bool
	GoalFitness   float64
	Fired         int
	Executed      int // end-user activity executions
	Failures      int
	Replans       int
	SimulatedTime float64 // accumulated compute seconds across all executions
	WallClockTime float64 // simulated elapsed time; concurrent branches overlap
	// DeadlineMissed is set when the case carries a soft deadline and the
	// wall clock overran it (the enactment still runs to completion).
	DeadlineMissed bool
	TotalCost      float64
	FinalState     *workflow.State
	Trace          []TraceEvent

	// spans mirrors Trace into the telemetry task trace when telemetry is
	// wired; nil otherwise (TaskTrace methods are nil-safe).
	spans *telemetry.TaskTrace
}

// Coordinator enacts tasks. Register its agent with Register, or call
// RunTask directly from scenario code.
type Coordinator struct {
	cfg Config
	ctx *agent.Context

	// Instruments are resolved once here so the enactment hot path pays one
	// atomic op per record, not a registry lookup. All are nil (no-ops) when
	// cfg.Telemetry is nil.
	mFired, mExecuted, mFailures, mReplans  *telemetry.Counter
	mTasksCompleted, mTasksFailed, mBatches *telemetry.Counter
	mCheckpoints, mCNRounds, mCNBids        *telemetry.Counter
	hBatchWall, hEnactReal, hCkptBytes      *telemetry.Histogram
}

// New builds a coordinator and registers its agent (services.CoordinationName).
func New(cfg Config) (*Coordinator, error) {
	if cfg.Platform == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("coordination: platform and catalog are required")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxReplans <= 0 {
		cfg.MaxReplans = 3
	}
	if cfg.MaxFires <= 0 {
		cfg.MaxFires = 1000
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = services.CallTimeout
	}
	c := &Coordinator{cfg: cfg}
	if tel := cfg.Telemetry; tel != nil {
		c.mFired = tel.Counter("coordination.activities.fired")
		c.mExecuted = tel.Counter("coordination.activities.executed")
		c.mFailures = tel.Counter("coordination.dispatch.failures")
		c.mReplans = tel.Counter("coordination.replans")
		c.mTasksCompleted = tel.Counter("coordination.tasks.completed")
		c.mTasksFailed = tel.Counter("coordination.tasks.failed")
		c.mBatches = tel.Counter("coordination.batches")
		c.mCheckpoints = tel.Counter("coordination.checkpoints.written")
		c.mCNRounds = tel.Counter("coordination.contractnet.rounds")
		c.mCNBids = tel.Counter("coordination.contractnet.bids")
		c.hBatchWall = tel.Histogram("coordination.batch.simulated.seconds", []float64{1, 10, 60, 300, 1800, 3600, 10800})
		c.hEnactReal = tel.Histogram("coordination.enact.real.seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60})
		c.hCkptBytes = tel.Histogram("coordination.checkpoint.bytes", []float64{1024, 4096, 16384, 65536, 262144})
	}
	ctx, err := cfg.Platform.Register(services.CoordinationName, agent.HandlerFunc(c.handle))
	if err != nil {
		return nil, err
	}
	c.ctx = ctx
	return c, nil
}

// TaskRequest asks the coordination service to enact a task.
type TaskRequest struct{ Task *workflow.Task }

// handle serves task requests sent as messages.
func (c *Coordinator) handle(ctx *agent.Context, msg agent.Message) {
	req, ok := msg.Content.(TaskRequest)
	if !ok {
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("coordination: unsupported content %T", msg.Content))
		return
	}
	report, err := c.RunTask(req.Task)
	if err != nil {
		_ = ctx.Reply(msg, agent.Failure, err)
		return
	}
	_ = ctx.Reply(msg, agent.Inform, report)
}

// RunTask enacts the task: if it needs planning, the planning service is
// asked for a process description first (Figure 2); then the case is
// enacted, re-planning on failures (Figure 3), until the goal is met or the
// budgets are exhausted.
func (c *Coordinator) RunTask(task *workflow.Task) (*Report, error) {
	if err := task.Validate(); err != nil {
		return nil, err
	}
	report := &Report{TaskID: task.ID, spans: c.cfg.Telemetry.TaskTrace(task.ID)}
	start := time.Now()
	defer func() {
		c.hEnactReal.Observe(time.Since(start).Seconds())
		if report.Completed {
			c.mTasksCompleted.Inc()
		} else {
			c.mTasksFailed.Inc()
		}
	}()
	state := task.Case.InitialState()
	goal := task.Case.Goal

	pd := task.Process
	if pd == nil {
		newPD, err := c.requestPlan(report, state, goal, nil, false)
		if err != nil {
			return nil, err
		}
		pd = newPD
	}

	// failedServices accumulates every service declared non-executable so
	// later re-planning rounds exclude all of them, not just the latest.
	failedServices := map[string]bool{}
	for {
		err := c.enact(report, task, pd, state, goal, newEnactState(pd))
		if err == nil {
			break
		}
		ne, isReplan := err.(*nonExecutableError)
		if !isReplan {
			return report, err
		}
		if report.Replans >= c.cfg.MaxReplans {
			return report, fmt.Errorf("coordination: task %s: re-planning budget exhausted after %q failed", task.ID, ne.service)
		}
		report.Replans++
		c.mReplans.Inc()
		failedServices[ne.service] = true
		report.trace("replan", ne.service, fmt.Sprintf("activity %s not executable", ne.activity))
		var exclude []string
		for name := range failedServices {
			exclude = append(exclude, name)
		}
		sort.Strings(exclude)
		// When providers existed but every execution attempt failed, an
		// availability probe would still report the service as executable;
		// the coordination service passes its first-hand knowledge directly
		// (the paper's "first method"). When no provider was found at all,
		// the planning service verifies through brokerage and containers
		// (Figure 3, the "second method").
		newPD, perr := c.requestPlan(report, state, goal, exclude, ne.hadCandidates)
		if perr != nil {
			return report, perr
		}
		pd = newPD
	}

	report.GoalFitness = goal.Fitness(state)
	report.Completed = report.GoalFitness >= 1
	report.FinalState = state
	return report, nil
}

// requestPlan performs the Figure 2 interaction with the planning service.
func (c *Coordinator) requestPlan(report *Report, state *workflow.State, goal workflow.Goal, nonExecutable []string, trustCaller bool) (*workflow.ProcessDescription, error) {
	report.trace("plan-request", "", fmt.Sprintf("non-executable: %v", nonExecutable))
	reply, err := c.ctx.Call(services.PlanningName, services.OntPlanning, planning.PlanRequest{
		TaskID:        report.TaskID,
		Initial:       state.Items(),
		Goal:          goal.Conditions,
		NonExecutable: nonExecutable,
		TrustCaller:   trustCaller,
	}, c.cfg.CallTimeout)
	if err != nil {
		return nil, fmt.Errorf("coordination: planning request failed: %w", err)
	}
	pr, ok := reply.Content.(planning.PlanReply)
	if !ok {
		return nil, fmt.Errorf("coordination: unexpected planning reply %T", reply.Content)
	}
	pd, err := pdl.ParseProcess("planned", pr.PDL)
	if err != nil {
		return nil, fmt.Errorf("coordination: planned PDL invalid: %w", err)
	}
	report.trace("plan-received", "", pr.Tree)
	return pd, nil
}

func (r *Report) trace(kind, activity, detail string) {
	r.Trace = append(r.Trace, TraceEvent{Kind: kind, Activity: activity, Detail: detail})
	r.spans.Span(kind, activity, detail)
}

// nonExecutableError signals that an activity could not be executed anywhere
// and re-planning is required.
type nonExecutableError struct {
	activity string
	service  string
	// hadCandidates is true when matchmaking found providers but every
	// execution attempt failed (as opposed to no provider existing).
	hadCandidates bool
}

func (e *nonExecutableError) Error() string {
	return fmt.Sprintf("coordination: activity %s (service %s) not executable", e.activity, e.service)
}

// Package coordination implements the coordination service: the proxy that
// receives a case description and controls the enactment of the workflow
// (Section 2). The enactor is an abstract ATN machine over the process
// description graph: tokens move along transitions, flow-control activities
// gate them (Fork/Join, Choice/Merge), and end-user activities are
// dispatched to application containers located through the matchmaking
// service. Failures trigger the re-planning interaction of Figure 3;
// progress is checkpointed to the persistent storage service.
package coordination

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sort"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/pdl"
	"repro/internal/planning"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/workflow"
)

// Config wires a coordinator.
type Config struct {
	Platform *agent.Platform
	// Catalog supplies the service specifications (pre/postconditions,
	// nominal times) for the end-user activities.
	Catalog *workflow.Catalog

	// MaxRetries bounds execution attempts per activity across candidate
	// containers before the activity is declared non-executable.
	MaxRetries int

	// UseContractNet acquires resources by bidding: the coordinator sends a
	// call for proposals to the brokerage's candidate containers and awards
	// execution by earliest predicted completion (ties by cost), instead of
	// asking the matchmaking service for a metadata ranking.
	UseContractNet bool
	// MaxReplans bounds re-planning rounds per task.
	MaxReplans int
	// MaxFires bounds total activity firings per enactment (loop safety).
	MaxFires int
	// CallTimeout bounds each service interaction.
	CallTimeout time.Duration

	// PostProcess, when set, is invoked after each successful end-user
	// activity with the produced data items and the per-activity visit
	// count; the virus-reconstruction scenario uses it to model resolution
	// refinement (computation steering happens here).
	PostProcess func(act *workflow.Activity, produced []*workflow.DataItem, visit int)

	// Checkpoint enables checkpointing to the storage service after every
	// completed activity.
	Checkpoint bool

	// Telemetry, when set, receives enactment metrics (see OBSERVABILITY.md)
	// and per-task span traces. Nil disables instrumentation at a nil-check
	// per record site.
	Telemetry *telemetry.Registry

	// Logger receives structured enactment logs (task outcomes, re-plans,
	// quarantines); nil means silent.
	Logger *slog.Logger

	// OnCheckpoint, when set, is invoked after every checkpoint successfully
	// written to the storage service, with the task ID and the stored
	// version. The enactment engine uses it to append "checkpointed" records
	// to its write-ahead task journal.
	OnCheckpoint func(taskID string, version int)
}

// TraceEvent records one step of an enactment for inspection.
type TraceEvent struct {
	Kind     string // "fire", "invoke", "dispatch", "complete", "fail", "replan", "choice", "checkpoint", ...
	Activity string
	Detail   string
}

// Report summarizes a finished enactment.
type Report struct {
	TaskID      string
	Completed   bool
	GoalFitness float64
	Fired       int
	Executed    int // end-user activity executions
	Failures    int
	Retries     int // failed attempts that were retried (possibly elsewhere)
	Faults      int // failures where the node was found down afterwards
	Replans     int
	// BackoffWait is the total simulated seconds spent backing off between
	// retry attempts; it counts toward WallClockTime.
	BackoffWait float64
	// Cancelled is set when the enactment was aborted by context
	// cancellation or a policy deadline.
	Cancelled bool
	// Policy is the resolved fault-tolerance policy the enactment ran under.
	Policy        Policy
	SimulatedTime float64 // accumulated compute seconds across all executions
	WallClockTime float64 // simulated elapsed time; concurrent branches overlap
	// DeadlineMissed is set when the case carries a soft deadline and the
	// wall clock overran it (the enactment still runs to completion).
	DeadlineMissed bool
	TotalCost      float64
	FinalState     *workflow.State
	Trace          []TraceEvent

	// spans mirrors Trace into the telemetry task trace when telemetry is
	// wired; nil otherwise (TaskTrace methods are nil-safe).
	spans *telemetry.TaskTrace
	// span is the enclosing enact span extracted from the run context; child
	// duration spans (scheduling consults, plan requests) parent under it.
	span telemetry.SpanContext
}

// Coordinator enacts tasks. Register its agent with Register, or call
// RunTask directly from scenario code.
type Coordinator struct {
	cfg Config
	ctx *agent.Context
	log *slog.Logger

	// Instruments are resolved once here so the enactment hot path pays one
	// atomic op per record, not a registry lookup. All are nil (no-ops) when
	// cfg.Telemetry is nil.
	mFired, mExecuted, mFailures, mReplans  *telemetry.Counter
	mTasksCompleted, mTasksFailed, mBatches *telemetry.Counter
	mCheckpoints, mCNRounds, mCNBids        *telemetry.Counter
	mRetries, mFaults, mFaultReplans        *telemetry.Counter
	mCancelled                              *telemetry.Counter
	mCostSchedules, mCostPreempts           *telemetry.Counter
	mBudgetExceeded, mDeadlinePreempts      *telemetry.Counter
	mDeadlineMissed                         *telemetry.Counter
	hBatchWall, hEnactReal, hCkptBytes      *telemetry.Histogram
	hBackoff, hStageSchedule                *telemetry.Histogram

	// perfMu guards perfCache, the short-TTL memo of brokerage
	// past-performance replies used by history-aware dispatch. The brokerage
	// snapshot is best-effort by design ("may be obsolete"), so serving a
	// reply a few hundred milliseconds stale trades nothing away and spares
	// one agent round-trip per dispatch batch.
	perfMu    sync.Mutex
	perfCache map[string]perfCacheEntry
	candCache map[string]candCacheEntry
}

// perfCacheEntry is one memoized PerfBatchReply, re-keyed by node.
type perfCacheEntry struct {
	stats map[string]services.PerfStats
	at    time.Time
}

// candCacheEntry is one memoized matchmaking reply. Matchmaking reads the
// live grid, so this cache does trade freshness for round-trips — bounded by
// the same short TTL, and dropped the moment a dispatch on the service
// fails, which is when staleness would actually matter.
type candCacheEntry struct {
	cands []services.Candidate
	at    time.Time
}

// perfCacheTTL bounds how stale a memoized past-performance reply may be.
const perfCacheTTL = 250 * time.Millisecond

// New builds a coordinator and registers its agent (services.CoordinationName).
func New(cfg Config) (*Coordinator, error) {
	if cfg.Platform == nil || cfg.Catalog == nil {
		return nil, fmt.Errorf("coordination: platform and catalog are required")
	}
	if cfg.MaxRetries <= 0 {
		cfg.MaxRetries = 3
	}
	if cfg.MaxReplans <= 0 {
		cfg.MaxReplans = 3
	}
	if cfg.MaxFires <= 0 {
		cfg.MaxFires = 1000
	}
	if cfg.CallTimeout <= 0 {
		cfg.CallTimeout = services.CallTimeout
	}
	c := &Coordinator{cfg: cfg, log: cfg.Logger}
	if c.log == nil {
		c.log = telemetry.NopLogger()
	}
	if tel := cfg.Telemetry; tel != nil {
		c.mFired = tel.Counter("coordination.activities.fired")
		c.mExecuted = tel.Counter("coordination.activities.executed")
		c.mFailures = tel.Counter("coordination.dispatch.failures")
		c.mReplans = tel.Counter("coordination.replans")
		c.mTasksCompleted = tel.Counter("coordination.tasks.completed")
		c.mTasksFailed = tel.Counter("coordination.tasks.failed")
		c.mBatches = tel.Counter("coordination.batches")
		c.mCheckpoints = tel.Counter("coordination.checkpoints.written")
		c.mCNRounds = tel.Counter("coordination.contractnet.rounds")
		c.mCNBids = tel.Counter("coordination.contractnet.bids")
		c.mRetries = tel.Counter("coordination.retries")
		c.mFaults = tel.Counter("coordination.dispatch.faults")
		c.mFaultReplans = tel.Counter("coordination.replans.fault")
		c.mCancelled = tel.Counter("coordination.tasks.cancelled")
		c.mCostSchedules = tel.Counter("scheduler.cost.schedules")
		c.mCostPreempts = tel.Counter("scheduler.cost.preemptions")
		c.mBudgetExceeded = tel.Counter("scheduler.cost.budget_exceeded")
		c.mDeadlinePreempts = tel.Counter("scheduler.deadline.preemptions")
		c.mDeadlineMissed = tel.Counter("scheduler.deadline.missed")
		c.hBackoff = tel.Histogram("coordination.backoff.simulated.seconds", []float64{1, 5, 30, 120, 300, 600})
		c.hBatchWall = tel.Histogram("coordination.batch.simulated.seconds", []float64{1, 10, 60, 300, 1800, 3600, 10800})
		c.hEnactReal = tel.Histogram("coordination.enact.real.seconds", []float64{0.001, 0.01, 0.1, 1, 10, 60})
		c.hCkptBytes = tel.Histogram("coordination.checkpoint.bytes", []float64{1024, 4096, 16384, 65536, 262144})
		c.hStageSchedule = tel.Histogram("trace.stage.schedule.seconds", []float64{0.0001, 0.001, 0.01, 0.1, 1, 10})
	}
	ctx, err := cfg.Platform.Register(services.CoordinationName, agent.HandlerFunc(c.handle))
	if err != nil {
		return nil, err
	}
	c.ctx = ctx
	return c, nil
}

// logger tolerates coordinators assembled as struct literals (tests do):
// a nil log falls back to the shared no-op logger.
func (c *Coordinator) logger() *slog.Logger {
	if c.log == nil {
		return telemetry.NopLogger()
	}
	return c.log
}

// SetCheckpointHook installs (or replaces) the Config.OnCheckpoint callback.
// Like the Telemetry wiring in core.NewEnvironment, this is only safe before
// the coordinator receives traffic.
func (c *Coordinator) SetCheckpointHook(fn func(taskID string, version int)) {
	c.cfg.OnCheckpoint = fn
}

// TaskRequest asks the coordination service to enact a task.
type TaskRequest struct{ Task *workflow.Task }

// handle serves task requests sent as messages.
func (c *Coordinator) handle(ctx *agent.Context, msg agent.Message) {
	req, ok := msg.Content.(TaskRequest)
	if !ok {
		_ = ctx.Reply(msg, agent.Refuse, fmt.Sprintf("coordination: unsupported content %T", msg.Content))
		return
	}
	report, err := c.RunTaskContext(context.Background(), req.Task, nil)
	if err != nil {
		_ = ctx.Reply(msg, agent.Failure, err)
		return
	}
	_ = ctx.Reply(msg, agent.Inform, report)
}

// RunTask enacts the task with the coordinator's default policy and no
// cancellation.
//
// Deprecated: use RunTaskContext, which additionally supports cancellation
// and a per-task fault-tolerance policy.
func (c *Coordinator) RunTask(task *workflow.Task) (*Report, error) {
	return c.RunTaskContext(context.Background(), task, nil)
}

// RunTaskContext enacts the task: if it needs planning, the planning service
// is asked for a process description first (Figure 2); then the case is
// enacted under the resolved policy, re-planning on failures (Figure 3),
// until the goal is met, the budgets are exhausted, or ctx is cancelled. A
// nil ctx behaves like context.Background(); a nil pol means defaults.
func (c *Coordinator) RunTaskContext(ctx context.Context, task *workflow.Task, pol *Policy) (*Report, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := task.Validate(); err != nil {
		return nil, err
	}
	p := c.ResolvePolicy(pol)
	if p.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, p.Deadline)
		defer cancel()
	}
	report := &Report{
		TaskID: task.ID, Policy: p,
		spans: c.cfg.Telemetry.TaskTrace(task.ID),
		span:  telemetry.SpanFromContext(ctx),
	}
	start := time.Now()
	defer func() {
		c.hEnactReal.Observe(time.Since(start).Seconds())
		outcome := "failed"
		switch {
		case report.Cancelled:
			c.mCancelled.Inc()
			outcome = "cancelled"
		case report.Completed:
			c.mTasksCompleted.Inc()
			outcome = "completed"
		default:
			c.mTasksFailed.Inc()
		}
		c.logger().Info("enactment finished",
			slog.String("task", task.ID), slog.String("outcome", outcome),
			slog.Int("executed", report.Executed), slog.Int("retries", report.Retries),
			slog.Int("replans", report.Replans),
			slog.Float64("wallSec", time.Since(start).Seconds()))
	}()
	state := task.Case.InitialState()
	goal := task.Case.Goal
	cc := newCaseConstraints(task.Case, report)

	pd := task.Process
	if pd == nil {
		newPD, err := c.requestPlan(ctx, report, state, goal, nil, false, nil, cc)
		if err != nil {
			return nil, err
		}
		pd = newPD
	}

	if err := c.enactWithReplanning(ctx, p, report, task, pd, state, goal, newEnactState(pd), cc); err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			report.Cancelled = true
			report.trace("cancel", "", err.Error())
		}
		return report, err
	}

	report.GoalFitness = goal.Fitness(state)
	report.Completed = report.GoalFitness >= 1
	report.FinalState = state
	return report, nil
}

// enactWithReplanning drives the enact/re-plan cycle of Figure 3 from an
// initial token state (fresh for RunTaskContext, restored for resume):
// each *nonExecutableError triggers a re-planning round excluding every
// service that failed so far; when the failure was fault-driven (retries
// exhausted on known nodes) those nodes are quarantined first so the new
// plan routes around them.
func (c *Coordinator) enactWithReplanning(ctx context.Context, p Policy, report *Report, task *workflow.Task, pd *workflow.ProcessDescription, state *workflow.State, goal workflow.Goal, es *enactState, cc *caseConstraints) error {
	// failedServices accumulates every service declared non-executable so
	// later re-planning rounds exclude all of them, not just the latest.
	failedServices := map[string]bool{}
	for {
		err := c.enact(ctx, p, report, task, pd, state, goal, es, cc)
		if err == nil {
			return nil
		}
		ne, isReplan := err.(*nonExecutableError)
		if !isReplan {
			return err
		}
		if report.Replans >= c.cfg.MaxReplans {
			return fmt.Errorf("coordination: task %s: re-planning budget exhausted after %q failed", task.ID, ne.service)
		}
		report.Replans++
		c.mReplans.Inc()
		if len(ne.nodes) > 0 {
			c.mFaultReplans.Inc()
			c.quarantine(ctx, report, ne)
		}
		failedServices[ne.service] = true
		report.trace("replan", ne.service, fmt.Sprintf("activity %s not executable", ne.activity))
		c.logger().Warn("re-planning after non-executable activity",
			slog.String("task", task.ID), slog.String("service", ne.service),
			slog.String("activity", ne.activity), slog.Int("replans", report.Replans))
		var exclude []string
		for name := range failedServices {
			exclude = append(exclude, name)
		}
		sort.Strings(exclude)
		// When providers existed but every execution attempt failed, an
		// availability probe would still report the service as executable;
		// the coordination service passes its first-hand knowledge directly
		// (the paper's "first method"). When no provider was found at all,
		// the planning service verifies through brokerage and containers
		// (Figure 3, the "second method").
		// The failed plan rides along so planning can re-plan incrementally:
		// the new population starts in the failed plan's neighborhood
		// instead of ramped-random from scratch.
		newPD, perr := c.requestPlan(ctx, report, state, goal, exclude, ne.hadCandidates, pd, cc)
		if perr != nil {
			return perr
		}
		pd = newPD
		es = newEnactState(pd)
	}
}

// quarantine asks the monitoring service to take the failed nodes out of
// rotation before re-planning. Best effort: without a monitoring service the
// re-plan still excludes the failed service itself.
func (c *Coordinator) quarantine(ctx context.Context, report *Report, ne *nonExecutableError) {
	if c.ctx == nil || !c.ctx.Platform().Has(services.MonitoringName) {
		return
	}
	reason := fmt.Sprintf("retries exhausted for %s (activity %s)", ne.service, ne.activity)
	for _, node := range ne.nodes {
		_, err := c.ctx.CallContext(ctx, services.MonitoringName, services.OntMonitoring,
			services.QuarantineRequest{Node: node, Reason: reason}, c.cfg.CallTimeout)
		if err != nil {
			report.trace("fault", ne.activity, fmt.Sprintf("quarantine of %s failed: %v", node, err))
			continue
		}
		report.trace("fault", ne.activity, "quarantined node "+node+": "+reason)
		c.logger().Warn("node quarantined",
			slog.String("task", report.TaskID), slog.String("node", node),
			slog.String("reason", reason))
	}
}

// requestPlan performs the Figure 2 interaction with the planning service.
// For constrained cases the remaining budget and deadline ride along so the
// Figure-3 re-plan folds them into the plan fitness (cheap/short plans win).
func (c *Coordinator) requestPlan(ctx context.Context, report *Report, state *workflow.State, goal workflow.Goal, nonExecutable []string, trustCaller bool, failed *workflow.ProcessDescription, cc *caseConstraints) (*workflow.ProcessDescription, error) {
	report.trace("plan-request", "", fmt.Sprintf("non-executable: %v", nonExecutable))
	req := planning.PlanRequest{
		TaskID:        report.TaskID,
		Initial:       state.Items(),
		Goal:          goal.Conditions,
		NonExecutable: nonExecutable,
		TrustCaller:   trustCaller,
		Failed:        failed,
		Traceparent:   report.span.Traceparent(),
	}
	if cc != nil {
		if cc.budget > 0 {
			req.MaxCost = cc.budget - cc.spent
		}
		req.MaxTime = cc.remainingDeadline()
	}
	reply, err := c.ctx.CallContext(ctx, services.PlanningName, services.OntPlanning, req, c.cfg.CallTimeout)
	if err != nil {
		return nil, fmt.Errorf("coordination: planning request failed: %w", err)
	}
	pr, ok := reply.Content.(planning.PlanReply)
	if !ok {
		return nil, fmt.Errorf("coordination: unexpected planning reply %T", reply.Content)
	}
	pd, err := pdl.ParseProcess("planned", pr.PDL)
	if err != nil {
		return nil, fmt.Errorf("coordination: planned PDL invalid: %w", err)
	}
	report.trace("plan-received", "", pr.Tree)
	return pd, nil
}

func (r *Report) trace(kind, activity, detail string) {
	r.Trace = append(r.Trace, TraceEvent{Kind: kind, Activity: activity, Detail: detail})
	r.spans.Span(kind, activity, detail)
}

// nonExecutableError signals that an activity could not be executed anywhere
// and re-planning is required.
type nonExecutableError struct {
	activity string
	service  string
	// hadCandidates is true when matchmaking found providers but every
	// execution attempt failed (as opposed to no provider existing).
	hadCandidates bool
	// nodes lists the nodes attempts failed on (sorted); the coordinator
	// quarantines them before re-planning so the new plan routes around the
	// faulty resources.
	nodes []string
}

func (e *nonExecutableError) Error() string {
	return fmt.Sprintf("coordination: activity %s (service %s) not executable", e.activity, e.service)
}

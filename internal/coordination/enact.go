package coordination

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"time"

	"repro/internal/agent"
	"repro/internal/expr"
	"repro/internal/services"
	"repro/internal/workflow"
)

// enactState is the resumable token state of an enactment: the worklist of
// activities holding a token, the per-Join arrival counts, and the
// per-activity visit counts. It is what the checkpoints persist.
type enactState struct {
	Ready   []string       `json:"ready"`
	Arrived map[string]int `json:"arrived"`
	Visits  map[string]int `json:"visits"`
}

// newEnactState places the initial token on Begin.
func newEnactState(pd *workflow.ProcessDescription) *enactState {
	return &enactState{
		Ready:   []string{pd.Begin().ID},
		Arrived: map[string]int{},
		Visits:  map[string]int{},
	}
}

// enact runs the ATN token game over the process description from the given
// token state, mutating state, es, and report in place. Flow-control tokens
// fire immediately; end-user tokens that are ready at the same time — the
// branches of a Fork — are dispatched concurrently as one batch, advancing
// the wall clock by the slowest member only. It returns nil on reaching
// End, a *nonExecutableError when re-planning is needed, ctx's error on
// cancellation, or another error on a malformed enactment.
func (c *Coordinator) enact(ctx context.Context, p Policy, report *Report, task *workflow.Task, pd *workflow.ProcessDescription, state *workflow.State, goal workflow.Goal, es *enactState, cc *caseConstraints) error {
	if err := pd.Validate(); err != nil {
		return err
	}
	for len(es.Ready) > 0 {
		if err := ctx.Err(); err != nil {
			return err
		}
		var batch []pendingExec
		// Drain the current worklist: flow control fires in place (and may
		// enqueue more tokens); end-user activities accumulate into the
		// concurrent batch.
		for len(es.Ready) > 0 {
			if report.Fired >= c.cfg.MaxFires {
				return fmt.Errorf("coordination: task %s exceeded %d activity firings (livelock?)", task.ID, c.cfg.MaxFires)
			}
			id := es.Ready[0]
			es.Ready = es.Ready[1:]
			act := pd.Activity(id)
			if act == nil {
				return fmt.Errorf("coordination: token at unknown activity %q", id)
			}
			report.Fired++
			c.mFired.Inc()
			es.Visits[id]++
			report.trace("fire", act.Name, act.Kind.String())

			switch act.Kind {
			case workflow.KindBegin, workflow.KindMerge, workflow.KindFork:
				for _, t := range pd.Out(id) {
					es.Ready = append(es.Ready, t.Dest)
				}

			case workflow.KindEnd:
				return nil

			case workflow.KindJoin:
				es.Arrived[id]++
				if es.Arrived[id] < len(pd.In(id)) {
					continue // wait for the remaining predecessors
				}
				es.Arrived[id] = 0
				es.Ready = append(es.Ready, pd.Out(id)[0].Dest)

			case workflow.KindChoice:
				dest, err := c.decide(report, pd, act, state, es.Visits)
				if err != nil {
					return err
				}
				es.Ready = append(es.Ready, dest)

			case workflow.KindEndUser:
				batch = append(batch, pendingExec{act: act, visit: es.Visits[id], token: id})
			}
		}

		if len(batch) == 0 {
			break
		}
		if err := c.runBatch(ctx, p, report, batch, state, cc); err != nil {
			if verr := (*ConstraintError)(nil); errors.As(err, &verr) {
				if verr.Reason == ReasonBudgetExceeded {
					c.mBudgetExceeded.Inc()
				}
				report.trace("constraint", "", verr.Detail)
			}
			return err
		}
		if dl := task.Case.Deadline; dl > 0 && report.WallClockTime > dl && !report.DeadlineMissed {
			report.DeadlineMissed = true
			report.trace("deadline", "", fmt.Sprintf("soft deadline %.0fs overrun at %.0fs", dl, report.WallClockTime))
		}
		if cc != nil {
			costP, timeP := cc.observe(report)
			if costP {
				c.mCostPreempts.Inc()
				report.trace("preempt", "", fmt.Sprintf("budget pressure: spent %.2f of %.2f, switching to cheapest candidates", cc.spent, cc.budget))
			}
			if timeP {
				c.mDeadlinePreempts.Inc()
				report.trace("preempt", "", fmt.Sprintf("deadline pressure: %.0fs of %.0fs elapsed, switching to fastest candidates", cc.elapsed, cc.deadline))
			}
			if verr := cc.violation(); verr != nil {
				switch verr.Reason {
				case ReasonBudgetExceeded:
					c.mBudgetExceeded.Inc()
				case ReasonDeadlineMissed:
					c.mDeadlineMissed.Inc()
					report.DeadlineMissed = true
				}
				report.trace("constraint", "", verr.Detail)
				return verr
			}
		}
		for _, b := range batch {
			es.Ready = append(es.Ready, pd.Out(b.token)[0].Dest)
		}
		if c.cfg.Checkpoint {
			c.checkpoint(ctx, report, task, pd, state, goal, es)
		}
	}
	return fmt.Errorf("coordination: task %s: tokens drained before reaching End", task.ID)
}

// decide picks the successor of a Choice activity: conditional transitions
// are evaluated against the case data state in declaration order and the
// first true one wins; otherwise the first unconditional transition is the
// default. The activity's own constraint (e.g. Cons1) is consulted when no
// transition carries a condition: if it evaluates true the first successor
// is taken, otherwise the last.
func (c *Coordinator) decide(report *Report, pd *workflow.ProcessDescription, act *workflow.Activity, state *workflow.State, visits map[string]int) (string, error) {
	outs := pd.Out(act.ID)
	if len(outs) == 0 {
		return "", fmt.Errorf("coordination: choice %s has no successors", act.ID)
	}
	anyConditional := false
	for _, t := range outs {
		if t.Condition == "" {
			continue
		}
		anyConditional = true
		ok, err := expr.Eval(t.Condition, state)
		if err != nil {
			return "", fmt.Errorf("coordination: choice %s condition: %w", act.ID, err)
		}
		if ok {
			report.trace("choice", act.Name, fmt.Sprintf("took %s [%s]", t.ID, t.Condition))
			return t.Dest, nil
		}
	}
	if anyConditional {
		for _, t := range outs {
			if t.Condition == "" {
				report.trace("choice", act.Name, "took default "+t.ID)
				return t.Dest, nil
			}
		}
		// All conditional and none true: the last transition is the
		// fallback (the loop-exit convention of Figure 10).
		t := outs[len(outs)-1]
		report.trace("choice", act.Name, "fell through to "+t.ID)
		return t.Dest, nil
	}
	if act.Constraint != "" {
		ok, err := expr.Eval(act.Constraint, state)
		if err != nil {
			return "", fmt.Errorf("coordination: choice %s constraint: %w", act.ID, err)
		}
		if ok {
			report.trace("choice", act.Name, "constraint true: took "+outs[0].ID)
			return outs[0].Dest, nil
		}
		report.trace("choice", act.Name, "constraint false: took "+outs[len(outs)-1].ID)
		return outs[len(outs)-1].Dest, nil
	}
	// No conditions anywhere: prefer a successor not yet visited, which
	// exits condition-less loops after a single pass instead of spinning
	// on the back transition forever.
	for _, t := range outs {
		if visits[t.Dest] == 0 {
			report.trace("choice", act.Name, "unconditioned: took "+t.ID)
			return t.Dest, nil
		}
	}
	report.trace("choice", act.Name, "unconditioned: took "+outs[0].ID)
	return outs[0].Dest, nil
}

// execResult is the outcome of one dispatched activity, gathered before its
// effects are applied to the shared case state (dispatches in a concurrent
// batch must not mutate state until every member finished).
type execResult struct {
	act      *workflow.Activity
	visit    int
	duration float64
	cost     float64
	failures int
	retries  int
	faults   int
	backoff  float64 // simulated seconds waited between attempts
	events   []TraceEvent
	err      error
}

// dispatch runs one end-user activity remotely: it verifies the service's
// preconditions against the (read-only) state, matchmakes candidate
// containers, and tries them best-first with retry-on-alternate-candidate —
// attempt n goes to candidate (n-1) mod len(candidates), so retries rotate
// through the ranking before coming back around — bounded by the policy's
// MaxRetries, backing off (in simulated time) between attempts. For a
// constrained case (cc non-nil) the ranking is cost-aware — cheapest
// candidate that still meets the deadline first — and an activity no
// remaining budget can afford aborts before the first attempt, consuming no
// retry. It does NOT mutate the state; apply() does that afterwards. Safe to
// call from multiple goroutines over the same state.
func (c *Coordinator) dispatch(ctx context.Context, p Policy, act *workflow.Activity, state *workflow.State, visit int, cc *caseConstraints) execResult {
	res := execResult{act: act, visit: visit}
	svc := c.cfg.Catalog.Get(act.Service)
	if svc == nil {
		res.err = fmt.Errorf("coordination: activity %s references unknown service %q", act.ID, act.Service)
		return res
	}
	if _, ok := svc.Bind(state); !ok {
		res.err = fmt.Errorf("coordination: activity %s preconditions unmet in current state %v", act.Name, state.Names())
		return res
	}

	// Input volume drives the communication term of the execution model.
	dataMB := 0.0
	for _, name := range act.Inputs {
		if item := state.Get(name); item != nil {
			if size, ok := item.Prop(workflow.PropSize); ok {
				if n, isNum := size.Num(); isNum {
					dataMB += n / 1e6
				}
			}
		}
	}

	var ranked []services.Candidate
	if c.cfg.UseContractNet {
		res.events = append(res.events, TraceEvent{Kind: "invoke", Activity: act.Name, Detail: services.BrokerageName})
		cands, err := c.contractNet(ctx, &res, act, svc, dataMB)
		if err != nil {
			res.err = err
			return res
		}
		ranked = cands
	} else {
		res.events = append(res.events, TraceEvent{Kind: "invoke", Activity: act.Name, Detail: services.MatchmakingName})
		cands, err := c.matchCandidates(ctx, act.Service)
		if err != nil {
			res.err = err
			return res
		}
		ranked = cands
	}
	if len(ranked) == 0 {
		res.err = &nonExecutableError{activity: act.Name, service: act.Service}
		return res
	}
	candidates := c.reorderByHistory(ctx, act.Service, ranked)
	if cc != nil {
		var minCost float64
		candidates, minCost = c.costRank(ctx, act, svc, state, candidates, cc)
		if cc.budget > 0 && cc.spent+minCost > cc.budget {
			res.events = append(res.events, TraceEvent{Kind: "constraint", Activity: act.Name,
				Detail: fmt.Sprintf("cheapest candidate costs ~%.2f but only %.2f of budget %.2f remains", minCost, cc.budget-cc.spent, cc.budget)})
			res.err = &ConstraintError{Reason: ReasonBudgetExceeded,
				Detail: fmt.Sprintf("activity %s: cheapest estimate %.2f exceeds remaining budget %.2f", act.Name, minCost, cc.budget-cc.spent)}
			return res
		}
	}

	var rng *rand.Rand // lazily seeded: most dispatches never retry
	failedNodes := map[string]bool{}
	for attempt := 1; attempt <= p.MaxRetries; attempt++ {
		if err := ctx.Err(); err != nil {
			res.err = err
			return res
		}
		cand := candidates[(attempt-1)%len(candidates)]
		res.events = append(res.events, TraceEvent{Kind: "dispatch", Activity: act.Name, Detail: cand.Container})
		execReply, err := c.ctx.CallContext(ctx, cand.Container, services.OntExecution, services.ExecuteRequest{
			Service:  act.Service,
			BaseTime: svc.BaseTime,
			DataMB:   dataMB,
		}, c.cfg.CallTimeout)
		if err == nil && execReply.Performative != agent.Failure {
			if er, ok := execReply.Content.(services.ExecuteReply); ok {
				res.duration = er.Exec.Duration
				res.cost = er.Exec.Cost
				res.events = append(res.events, TraceEvent{Kind: "complete", Activity: act.Name,
					Detail: fmt.Sprintf("on %s in %.1fs", cand.Container, er.Exec.Duration)})
				return res
			}
		}
		if cerr := ctx.Err(); cerr != nil {
			res.err = cerr
			return res
		}
		res.failures++
		c.invalidatePerf(act.Service)
		res.events = append(res.events, TraceEvent{Kind: "fail", Activity: act.Name,
			Detail: fmt.Sprintf("on %s: %v", cand.Container, err)})
		failedNodes[cand.Node] = true
		c.noteFault(ctx, &res, act, cand)
		if attempt == p.MaxRetries {
			break
		}
		// The failure just invalidated the memoized candidate list; re-match
		// against the live grid so later attempts stop rotating through a
		// snapshot that may still rank a node that went down mid-dispatch.
		if fresh, ferr := c.matchCandidates(ctx, act.Service); ferr == nil && len(fresh) > 0 {
			candidates = c.reorderByHistory(ctx, act.Service, fresh)
			if cc != nil {
				candidates, _ = c.costRank(ctx, act, svc, state, candidates, cc)
			}
		}
		res.retries++
		next := candidates[attempt%len(candidates)]
		if p.BackoffBase > 0 {
			if rng == nil {
				rng = p.retryStream(act.Name, visit)
			}
			wait := p.backoff(attempt, rng)
			if p.ActivityTimeout > 0 && res.backoff+wait > p.ActivityTimeout {
				res.events = append(res.events, TraceEvent{Kind: "retry", Activity: act.Name,
					Detail: fmt.Sprintf("abandoned: backoff budget %.0fs exhausted", p.ActivityTimeout)})
				break
			}
			res.backoff += wait
			res.events = append(res.events, TraceEvent{Kind: "retry", Activity: act.Name,
				Detail: fmt.Sprintf("attempt %d/%d on %s after %.1fs backoff", attempt+1, p.MaxRetries, next.Container, wait)})
		} else {
			res.events = append(res.events, TraceEvent{Kind: "retry", Activity: act.Name,
				Detail: fmt.Sprintf("attempt %d/%d on %s", attempt+1, p.MaxRetries, next.Container)})
		}
	}
	ne := &nonExecutableError{activity: act.Name, service: act.Service, hadCandidates: true}
	for n := range failedNodes {
		ne.nodes = append(ne.nodes, n)
	}
	sort.Strings(ne.nodes)
	res.err = ne
	return res
}

// noteFault asks the monitoring service whether the candidate's node went
// down during the failed attempt — the signature of an injected crash — and
// records it as a fault. Best effort; silent without a monitoring service.
func (c *Coordinator) noteFault(ctx context.Context, res *execResult, act *workflow.Activity, cand services.Candidate) {
	if c.ctx == nil || !c.ctx.Platform().Has(services.MonitoringName) {
		return
	}
	reply, err := c.ctx.CallContext(ctx, services.MonitoringName, services.OntMonitoring,
		services.NodeStatusRequest{Node: cand.Node}, c.cfg.CallTimeout)
	if err != nil {
		return
	}
	if sr, ok := reply.Content.(services.NodeStatusReply); ok && sr.Known && !sr.Up {
		res.faults++
		res.events = append(res.events, TraceEvent{Kind: "fault", Activity: act.Name,
			Detail: fmt.Sprintf("node %s down after failed attempt on %s", cand.Node, cand.Container)})
	}
}

// contractNet acquires candidates by bidding (the Section 1 spot-market
// negotiation): candidate containers come from the brokerage's possibly
// stale snapshot; each is sent a CallForProposal; the bids are ranked by
// earliest predicted completion, ties broken by predicted cost then ID.
// Containers that refuse (down node, service not offered) drop out here —
// exactly how staleness is reconciled in a negotiation.
func (c *Coordinator) contractNet(ctx context.Context, res *execResult, act *workflow.Activity, svc *workflow.Service, dataMB float64) ([]services.Candidate, error) {
	c.mCNRounds.Inc()
	reply, err := c.ctx.CallContext(ctx, services.BrokerageName, services.OntBrokerage,
		services.ContainersRequest{Service: act.Service}, c.cfg.CallTimeout)
	if err != nil {
		return nil, err
	}
	cr, ok := reply.Content.(services.ContainersReply)
	if !ok {
		return nil, fmt.Errorf("coordination: unexpected brokerage reply %T", reply.Content)
	}
	cfp := services.CallForProposal{Service: act.Service, BaseTime: svc.BaseTime, DataMB: dataMB}
	var bids []services.Proposal
	for _, containerID := range cr.Containers {
		bidReply, err := c.ctx.CallContext(ctx, containerID, services.OntExecution, cfp, c.cfg.CallTimeout)
		if err != nil || bidReply.Performative != agent.Inform {
			continue // refused or unreachable: not a bidder
		}
		if prop, ok := bidReply.Content.(services.Proposal); ok {
			bids = append(bids, prop)
			c.mCNBids.Inc()
			res.events = append(res.events, TraceEvent{Kind: "bid", Activity: act.Name,
				Detail: fmt.Sprintf("%s offers %.0fs at %.2f", prop.Container, prop.PredictedTime, prop.PredictedCost)})
		}
	}
	sort.Slice(bids, func(i, j int) bool {
		if bids[i].PredictedTime != bids[j].PredictedTime {
			return bids[i].PredictedTime < bids[j].PredictedTime
		}
		if bids[i].PredictedCost != bids[j].PredictedCost {
			return bids[i].PredictedCost < bids[j].PredictedCost
		}
		return bids[i].Container < bids[j].Container
	})
	out := make([]services.Candidate, len(bids))
	for i, b := range bids {
		out[i] = services.Candidate{Container: b.Container, Node: b.Node, Cost: b.CostPerSec, PredictedTime: b.PredictedTime}
	}
	return out, nil
}

// reorderByHistory consults the brokerage's past-performance data base and
// demotes candidates whose node has a poor execution record for this service
// (success rate below 0.5 over at least three runs). This is the paper's
// "ability to access history information about the past execution of the
// task": resources with a proven record are preferred. Relative order
// within the kept and demoted groups is preserved.
func (c *Coordinator) reorderByHistory(ctx context.Context, service string, cands []services.Candidate) []services.Candidate {
	if len(cands) < 2 {
		return cands
	}
	stats := c.perfStats(ctx, service, cands)
	if stats == nil {
		return cands
	}
	bad := func(cand services.Candidate) bool {
		st, ok := stats[cand.Node]
		return ok && st.Runs >= 3 && st.SuccessRate < 0.5
	}
	// Fast path: every node healthy (the overwhelmingly common case) keeps
	// the ranking as-is without allocating.
	first := -1
	for i, cand := range cands {
		if bad(cand) {
			first = i
			break
		}
	}
	if first < 0 {
		return cands
	}
	kept := append(make([]services.Candidate, 0, len(cands)), cands[:first]...)
	demoted := []services.Candidate{cands[first]}
	for _, cand := range cands[first+1:] {
		if bad(cand) {
			demoted = append(demoted, cand)
		} else {
			kept = append(kept, cand)
		}
	}
	return append(kept, demoted...)
}

// perfStats resolves past-performance statistics by node for one service,
// memoized for perfCacheTTL: consecutive dispatch batches reuse one
// brokerage round-trip. The memo is keyed by service alone, so a candidate
// set that grew within the TTL may miss nodes in the map — a missing node
// simply has no history yet and is never demoted, which is the same answer
// a fresh but empty brokerage record would give.
func (c *Coordinator) perfStats(ctx context.Context, service string, cands []services.Candidate) map[string]services.PerfStats {
	now := time.Now()
	c.perfMu.Lock()
	if e, ok := c.perfCache[service]; ok && now.Sub(e.at) < perfCacheTTL {
		c.perfMu.Unlock()
		return e.stats
	}
	c.perfMu.Unlock()

	nodes := make([]string, len(cands))
	for i, cand := range cands {
		nodes[i] = cand.Node
	}
	reply, err := c.ctx.CallContext(ctx, services.BrokerageName, services.OntBrokerage,
		services.PerfBatchRequest{Service: service, Nodes: nodes}, c.cfg.CallTimeout)
	if err != nil {
		return nil
	}
	pr, ok := reply.Content.(services.PerfBatchReply)
	if !ok || len(pr.Stats) != len(nodes) {
		return nil
	}
	byNode := make(map[string]services.PerfStats, len(nodes))
	for i, node := range nodes {
		byNode[node] = pr.Stats[i]
	}
	c.perfMu.Lock()
	if c.perfCache == nil {
		c.perfCache = make(map[string]perfCacheEntry)
	}
	c.perfCache[service] = perfCacheEntry{stats: byNode, at: now}
	c.perfMu.Unlock()
	return byNode
}

// matchCandidates resolves the ranked candidate list for one service,
// memoized for perfCacheTTL. Empty replies are never cached: a re-planning
// round may deploy software or discover new containers, and a cached "no
// candidates" answer would blind it for the TTL.
func (c *Coordinator) matchCandidates(ctx context.Context, service string) ([]services.Candidate, error) {
	now := time.Now()
	c.perfMu.Lock()
	if e, ok := c.candCache[service]; ok && now.Sub(e.at) < perfCacheTTL {
		c.perfMu.Unlock()
		return e.cands, nil
	}
	c.perfMu.Unlock()

	reply, err := c.ctx.CallContext(ctx, services.MatchmakingName, services.OntMatchmaking,
		services.MatchRequest{Service: service}, c.cfg.CallTimeout)
	if err != nil {
		return nil, err
	}
	mr, ok := reply.Content.(services.MatchReply)
	if !ok {
		return nil, fmt.Errorf("coordination: unexpected matchmaking reply %T", reply.Content)
	}
	if len(mr.Candidates) > 0 {
		c.perfMu.Lock()
		if c.candCache == nil {
			c.candCache = make(map[string]candCacheEntry)
		}
		c.candCache[service] = candCacheEntry{cands: mr.Candidates, at: now}
		c.perfMu.Unlock()
	}
	return mr.Candidates, nil
}

// invalidatePerf drops the memoized past-performance and matchmaking
// replies for one service. The coordinator calls it the moment it observes
// a failed execution itself: both cached snapshots are known-obsolete, and
// the next dispatch must see fresh history and a fresh candidate ranking.
func (c *Coordinator) invalidatePerf(service string) {
	c.perfMu.Lock()
	delete(c.perfCache, service)
	delete(c.candCache, service)
	c.perfMu.Unlock()
}

// apply merges a successful dispatch into the report and case state:
// accounting, trace, postconditions (with the steering hook), data items.
func (c *Coordinator) apply(report *Report, res execResult, state *workflow.State) {
	report.Trace = append(report.Trace, res.events...)
	for _, ev := range res.events {
		report.spans.Span(ev.Kind, ev.Activity, ev.Detail)
	}
	report.Failures += res.failures
	c.mFailures.Add(int64(res.failures))
	report.Retries += res.retries
	c.mRetries.Add(int64(res.retries))
	report.Faults += res.faults
	c.mFaults.Add(int64(res.faults))
	if res.backoff > 0 {
		report.BackoffWait += res.backoff
		c.hBackoff.Observe(res.backoff)
	}
	if res.err != nil {
		return
	}
	report.Executed++
	c.mExecuted.Inc()
	report.SimulatedTime += res.duration
	report.TotalCost += res.cost
	svc := c.cfg.Catalog.Get(res.act.Service)
	produced := svc.Produce(res.act.Outputs, report.Executed)
	if c.cfg.PostProcess != nil {
		c.cfg.PostProcess(res.act, produced, res.visit)
	}
	for _, item := range produced {
		state.Put(item)
	}
}

// runBatch dispatches a set of simultaneously ready end-user activities
// concurrently — the Fork semantics of the paper — and applies the results
// in activity order. Wall-clock time advances by the longest member,
// counting its backoff waits (compute time still accumulates every
// execution). Returns the first error, preferring hard errors over
// re-planning signals.
func (c *Coordinator) runBatch(ctx context.Context, p Policy, report *Report, batch []pendingExec, state *workflow.State, cc *caseConstraints) error {
	results := make([]execResult, len(batch))
	if len(batch) == 1 {
		results[0] = c.dispatch(ctx, p, batch[0].act, state, batch[0].visit, cc)
	} else {
		c.consultScheduling(ctx, report, batch)
		var wg sync.WaitGroup
		for i := range batch {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				results[i] = c.dispatch(ctx, p, batch[i].act, state, batch[i].visit, cc)
			}(i)
		}
		wg.Wait()
	}
	longest := 0.0
	for i := range results {
		c.apply(report, results[i], state)
		if d := results[i].duration + results[i].backoff; d > longest {
			longest = d
		}
	}
	report.WallClockTime += longest
	c.mBatches.Inc()
	c.hBatchWall.Observe(longest)
	var replanErr error
	for i := range results {
		if err := results[i].err; err != nil {
			if _, isReplan := err.(*nonExecutableError); isReplan {
				if replanErr == nil {
					replanErr = err
				}
				continue
			}
			return err
		}
	}
	if replanErr != nil {
		if err := ctx.Err(); err != nil {
			return err // cancellation beats a re-planning round
		}
	}
	return replanErr
}

// consultScheduling asks the scheduling service for a min-min placement of
// a concurrent batch before it is dispatched. The placement is advisory:
// each activity still matchmakes (or bids) for its own container, which
// keeps per-activity failure recovery intact — but the batch-level decision
// is recorded, so the schedule and its predicted makespan appear in the
// task trace and the scheduling metrics. A missing scheduling service is
// noted and otherwise ignored.
func (c *Coordinator) consultScheduling(ctx context.Context, report *Report, batch []pendingExec) {
	specs := make([]services.TaskSpec, 0, len(batch))
	for _, p := range batch {
		if svc := c.cfg.Catalog.Get(p.act.Service); svc != nil {
			specs = append(specs, services.TaskSpec{ID: p.act.Name, Service: p.act.Service, BaseTime: svc.BaseTime})
		}
	}
	if len(specs) == 0 {
		return
	}
	report.trace("invoke", "", services.SchedulingName)
	_, endSched := report.spans.Begin(report.span, "schedule", services.SchedulingName)
	reply, err := c.ctx.CallContext(ctx, services.SchedulingName, services.OntScheduling,
		services.ScheduleRequest{Tasks: specs}, c.cfg.CallTimeout)
	if err != nil {
		c.hStageSchedule.ObserveExemplar(endSched("scheduling service unavailable: "+err.Error()), report.span.TraceID)
		return
	}
	detail := fmt.Sprintf("min-min over %d ready activities", len(specs))
	if sr, ok := reply.Content.(services.ScheduleReply); ok {
		detail = fmt.Sprintf("min-min over %d ready activities: makespan %.0fs", len(specs), sr.Makespan)
	}
	c.hStageSchedule.ObserveExemplar(endSched(detail), report.span.TraceID)
}

// pendingExec is one batch member.
type pendingExec struct {
	act   *workflow.Activity
	visit int
	token string
}

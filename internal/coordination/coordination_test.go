package coordination

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"testing"

	"repro/internal/agent"
	"repro/internal/expr"
	"repro/internal/grid"
	"repro/internal/planner"
	"repro/internal/planning"
	"repro/internal/services"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// env is a full environment: grid, core services, planning, coordination.
type env struct {
	platform *agent.Platform
	grid     *grid.Grid
	core     *services.Core
	plansvc  *planning.Service
	coord    *Coordinator
}

// newEnv builds a reliable two-domain grid offering all virolab services
// plus a backup reconstruction service P3DRALT (used by the re-planning
// scenario).
func newEnv(t *testing.T, checkpoint bool) *env {
	return newEnvWith(t, checkpoint, nil)
}

// newEnvWith is newEnv with a coordinator-config hook applied before New;
// the fault-tolerance tests use it to wire telemetry and custom hooks.
func newEnvWith(t *testing.T, checkpoint bool, mod func(*Config)) *env {
	t.Helper()
	g := grid.New(5)
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(g.AddNode(&grid.Node{
		ID: "cluster-1", Domain: "ucf.edu",
		Hardware:   grid.Hardware{Type: "PC-cluster", Speed: 1, BandwidthMbps: 1000, LatencyUs: 100},
		CostPerSec: 0.01,
	}))
	must(g.AddNode(&grid.Node{
		ID: "smp-1", Domain: "purdue.edu",
		Hardware:   grid.Hardware{Type: "SMP", Speed: 2, BandwidthMbps: 1000, LatencyUs: 10},
		CostPerSec: 0.04,
	}))
	must(g.AddContainer(&grid.Container{
		ID: "ac-main", NodeID: "smp-1",
		Services: []string{"POD", "P3DR", "POR", "PSF"},
	}))
	must(g.AddContainer(&grid.Container{
		ID: "ac-backup", NodeID: "cluster-1",
		Services: []string{"POD", "POR", "PSF", "P3DRALT"},
	}))

	p := agent.NewPlatform()
	core, err := services.Bootstrap(p, g)
	must(err)

	catalog := virolab.Catalog()
	// P3DRALT: an alternative reconstruction program with the same pre- and
	// postconditions as P3DR, hosted only on the backup container.
	p3dr := catalog.Get("P3DR")
	catalog.Add(&workflow.Service{
		Name:     "P3DRALT",
		Inputs:   p3dr.Inputs,
		Outputs:  p3dr.Outputs,
		BaseTime: p3dr.BaseTime * 1.5,
		Cost:     p3dr.Cost,
	})

	params := planner.DefaultParams()
	params.PopulationSize = 120
	params.Generations = 15
	params.Seed = 7
	plansvc := planning.New(catalog, params)
	_, err = p.Register(services.PlanningName, plansvc)
	must(err)

	cfg := Config{
		Platform:    p,
		Catalog:     catalog,
		PostProcess: virolab.ResolutionHook(nil),
		Checkpoint:  checkpoint,
	}
	if mod != nil {
		mod(&cfg)
	}
	coord, err := New(cfg)
	must(err)
	t.Cleanup(p.Shutdown)
	return &env{platform: p, grid: g, core: core, plansvc: plansvc, coord: coord}
}

func countTrace(report *Report, kind, activity string) int {
	n := 0
	for _, e := range report.Trace {
		if e.Kind == kind && (activity == "" || e.Activity == activity) {
			n++
		}
	}
	return n
}

// TestFig10Enactment enacts the full case-study workflow: the iterative
// refinement loops until the resolution reaches 8 Angstrom (three PSF
// passes with the default schedule).
func TestFig10Enactment(t *testing.T) {
	e := newEnv(t, false)
	report, err := e.coord.RunTask(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed || report.GoalFitness < 1 {
		t.Fatalf("not completed: %+v", report)
	}
	// POD + P3DR1 + 3 iterations x (POR + P3DR2 + P3DR3 + P3DR4 + PSF).
	if report.Executed != 17 {
		t.Errorf("executed = %d, want 17", report.Executed)
	}
	if got := countTrace(report, "complete", "PSF"); got != 3 {
		t.Errorf("PSF completions = %d, want 3", got)
	}
	if got := countTrace(report, "complete", "POR"); got != 3 {
		t.Errorf("POR completions = %d, want 3", got)
	}
	d12 := report.FinalState.Get("D12")
	if d12 == nil {
		t.Fatal("D12 missing from final state")
	}
	if v, _ := d12.Prop(workflow.PropValue); v.Str() != "7.8" {
		t.Errorf("final resolution = %v, want 7.8", v)
	}
	if report.SimulatedTime <= 0 || report.TotalCost <= 0 {
		t.Errorf("accounting: time=%g cost=%g", report.SimulatedTime, report.TotalCost)
	}
	if report.Replans != 0 {
		t.Errorf("replans = %d, want 0", report.Replans)
	}
	// The orientation file D8 was refined by POR (creator changed).
	d8 := report.FinalState.Get("D8")
	if d8 == nil {
		t.Fatal("D8 missing")
	}
	if creator, _ := d8.Prop(workflow.PropCreator); creator.Str() != "POR" {
		t.Errorf("D8 creator = %v, want POR (refined)", creator)
	}
}

// TestFig2PlanningFlow submits a task without a process description: the
// coordination service asks the planning service for one (Figure 2) and
// enacts the result.
func TestFig2PlanningFlow(t *testing.T) {
	e := newEnv(t, false)
	var mu sync.Mutex
	var msgTrace []string
	e.platform.SetTrace(func(m agent.Message) {
		mu.Lock()
		msgTrace = append(msgTrace, m.Sender+">"+m.Receiver)
		mu.Unlock()
	})
	task := &workflow.Task{
		ID:           "T2",
		Name:         "planned-3DSD",
		Case:         virolab.Case(),
		NeedPlanning: true,
	}
	report, err := e.coord.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("planned task not completed: %+v", report.Trace)
	}
	if countTrace(report, "plan-request", "") != 1 || countTrace(report, "plan-received", "") != 1 {
		t.Errorf("planning trace missing: %+v", report.Trace)
	}
	// Figure 2 message flow: coordination -> planning, planning -> coordination.
	mu.Lock()
	joined := strings.Join(msgTrace, " ")
	mu.Unlock()
	if !strings.Contains(joined, "coordination>planning") {
		t.Errorf("message trace missing coordination>planning: %v", msgTrace)
	}
	if !strings.Contains(joined, "planning>coordination") {
		t.Errorf("message trace missing planning>coordination: %v", msgTrace)
	}
}

// TestFig3ReplanningFlow fails the only P3DR provider mid-environment: the
// coordinator detects the non-executable activity, the planning service
// verifies executability through brokerage and containers (Figure 3), and
// the new plan uses the backup service P3DRALT.
func TestFig3ReplanningFlow(t *testing.T) {
	e := newEnv(t, false)
	var steps []string
	e.plansvc.Trace = func(s string) { steps = append(steps, s) }

	// The P3DR provider node goes down before the run. The brokerage
	// snapshot still lists it (stale information, as in the paper); the
	// planning service must discover non-executability by probing.
	if err := e.grid.SetNodeUp("smp-1", false); err != nil {
		t.Fatal(err)
	}

	report, err := e.coord.RunTask(virolab.Task())
	if err != nil {
		t.Fatalf("err=%v trace=%+v", err, report)
	}
	if !report.Completed {
		t.Fatalf("not completed after re-planning: %+v", report.Trace)
	}
	if report.Replans != 1 {
		t.Errorf("replans = %d, want 1", report.Replans)
	}
	// Fig 3 steps appeared: brokerage lookup, container query, probes.
	joined := strings.Join(steps, " | ")
	for _, want := range []string{
		"information: brokerage service?",
		"brokerage service found",
		"application containers for P3DR?",
		"not executable",
	} {
		if !strings.Contains(joined, want) {
			t.Errorf("Figure 3 step %q missing in %s", want, joined)
		}
	}
	// The alternative service carried the reconstruction.
	usedAlt := false
	for _, ev := range report.Trace {
		if ev.Kind == "complete" && strings.Contains(ev.Activity, "P3DRALT") {
			usedAlt = true
		}
	}
	if !usedAlt {
		t.Errorf("P3DRALT never executed; trace: %+v", report.Trace)
	}
}

// TestReplanningBudgetExhausted removes every reconstruction path: the task
// must fail with a clear error instead of looping.
func TestReplanningBudgetExhausted(t *testing.T) {
	e := newEnv(t, false)
	_ = e.grid.SetNodeUp("smp-1", false)
	_ = e.grid.SetNodeUp("cluster-1", false)
	_, err := e.coord.RunTask(virolab.Task())
	if err == nil {
		t.Fatal("task with no resources succeeded")
	}
}

// TestCheckpointing verifies a checkpoint is written per completed activity
// and that the final one restores the final data state.
func TestCheckpointing(t *testing.T) {
	e := newEnv(t, true)
	report, err := e.coord.RunTask(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	snap, err := LoadCheckpoint(e.core.Storage, "T1")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Executed != report.Executed {
		t.Errorf("checkpoint executed = %d, want %d", snap.Executed, report.Executed)
	}
	st := snap.RestoreState()
	if st.Len() != report.FinalState.Len() {
		t.Errorf("restored items = %d, want %d", st.Len(), report.FinalState.Len())
	}
	d12 := st.Get("D12")
	if d12 == nil || d12.Classification() != "Resolution File" {
		t.Fatalf("restored D12 = %v", d12)
	}
	if v, _ := d12.Prop(workflow.PropValue); v.Str() != "7.8" {
		t.Errorf("restored resolution = %v", v)
	}
	// One checkpoint per dispatch batch: Fig 10 has POD, P3DR1, then three
	// iterations of (POR, the concurrent P3DR trio, PSF) = 2 + 3x3 = 11.
	_, ver, found, _ := e.core.Storage.Get(CheckpointKey("T1"), 0)
	if !found || ver != 11 {
		t.Errorf("checkpoint versions = %d (found=%v), want 11", ver, found)
	}
	// Missing checkpoint errors.
	if _, err := LoadCheckpoint(e.core.Storage, "ghost"); err == nil {
		t.Error("ghost checkpoint loaded")
	}
}

// TestRetryOnFlakyNode gives the best node a high failure rate: executions
// fail there and the coordinator retries on the backup container without
// re-planning.
func TestRetryOnFlakyNode(t *testing.T) {
	e := newEnv(t, false)
	e.grid.Node("smp-1").FailureRate = 1.0 // every execution fails
	report, err := e.coord.RunTask(virolab.Task())
	if err != nil {
		t.Fatalf("err=%v", err)
	}
	// P3DR only exists on the flaky node, so the coordinator re-plans onto
	// P3DRALT; POD/POR/PSF fall back to the healthy container directly.
	if !report.Completed {
		t.Fatalf("not completed: %+v", report.Trace)
	}
	if report.Failures == 0 {
		t.Error("expected recorded failures on the flaky node")
	}
}

func TestRunTaskValidation(t *testing.T) {
	e := newEnv(t, false)
	if _, err := e.coord.RunTask(&workflow.Task{ID: ""}); err == nil {
		t.Error("invalid task accepted")
	}
}

func TestTaskRequestMessage(t *testing.T) {
	e := newEnv(t, false)
	client := e.platform.MustRegister("ui", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))
	reply, err := client.Call(services.CoordinationName, "grid-coordination",
		TaskRequest{Task: virolab.Task()}, services.CallTimeout)
	if err != nil {
		t.Fatal(err)
	}
	report, ok := reply.Content.(*Report)
	if !ok {
		t.Fatalf("reply content %T", reply.Content)
	}
	if !report.Completed {
		t.Error("message-driven task not completed")
	}
	// Junk content refused.
	reply, err = client.Call(services.CoordinationName, "grid-coordination", 42, services.CallTimeout)
	if err != nil {
		t.Fatal(err)
	}
	if reply.Performative != agent.Refuse {
		t.Errorf("junk content performative = %v", reply.Performative)
	}
}

func TestDecideConstraintPath(t *testing.T) {
	// A Choice with an activity-level constraint but unconditioned
	// transitions (the Figure 13 "Constraint" style) picks the first
	// successor while the constraint holds, the last when it fails.
	e := newEnv(t, false)
	pd := workflow.NewProcess("constraint-choice")
	pd.Add(&workflow.Activity{ID: "b", Kind: workflow.KindBegin, Name: "BEGIN"})
	pd.Add(&workflow.Activity{ID: "pod", Kind: workflow.KindEndUser, Name: "POD", Service: "POD", Outputs: []string{"D8"}})
	pd.Add(&workflow.Activity{ID: "m", Kind: workflow.KindMerge, Name: "MERGE"})
	pd.Add(&workflow.Activity{ID: "psf", Kind: workflow.KindEndUser, Name: "PSFX", Service: "POD", Outputs: []string{"DX"}})
	pd.Add(&workflow.Activity{ID: "c", Kind: workflow.KindChoice, Name: "CHOICE",
		Constraint: `DX.marker = 1`})
	pd.Add(&workflow.Activity{ID: "e", Kind: workflow.KindEnd, Name: "END"})
	pd.Connect("b", "pod")
	pd.Connect("pod", "m")
	pd.Connect("m", "psf")
	pd.Connect("psf", "c")
	pd.Connect("c", "m") // loop while constraint true
	pd.Connect("c", "e")
	if err := pd.Validate(); err != nil {
		t.Fatal(err)
	}

	marker := []float64{1, 1, 0} // loop twice, then exit
	coordCfg := e.coord.cfg
	coordCfg.PostProcess = func(act *workflow.Activity, produced []*workflow.DataItem, visit int) {
		if act.Name != "PSFX" {
			return
		}
		idx := visit - 1
		if idx >= len(marker) {
			idx = len(marker) - 1
		}
		for _, it := range produced {
			it.With("marker", expr.Number(marker[idx]))
		}
	}
	c2 := &Coordinator{cfg: coordCfg, ctx: e.coord.ctx}
	task := &workflow.Task{
		ID:      "TC",
		Name:    "constraint",
		Process: pd,
		Case:    virolab.Case(),
	}
	report, err := c2.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if got := countTrace(report, "complete", "PSFX"); got != 3 {
		t.Errorf("PSFX completions = %d, want 3 (loop twice + exit pass)", got)
	}
}

// TestResumeFromMidwayCheckpoint runs the case study to completion (writing
// a checkpoint per activity), then resumes from an intermediate checkpoint
// version and verifies the resumed run finishes the remaining work exactly.
func TestResumeFromMidwayCheckpoint(t *testing.T) {
	e := newEnv(t, true)
	full, err := e.coord.RunTask(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	if full.Executed != 17 {
		t.Fatalf("full run executed %d, want 17", full.Executed)
	}
	// Snapshots are per dispatch batch; resuming from EVERY version must
	// complete the remaining work exactly (total 17 executions each time).
	_, latest, found, _ := e.core.Storage.Get(CheckpointKey("T1"), 0)
	if !found || latest < 3 {
		t.Fatalf("latest checkpoint version = %d", latest)
	}
	for version := 1; version <= latest; version++ {
		snap, err := LoadCheckpointVersion(e.core.Storage, "T1", version)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Executed < version {
			t.Fatalf("snapshot v%d has executed=%d (< version)", version, snap.Executed)
		}
		report, err := e.coord.Resume(snap)
		if err != nil {
			t.Fatalf("resume from v%d: %v", version, err)
		}
		if !report.Completed {
			t.Errorf("resume from v%d did not complete", version)
		}
		if report.Executed != 17 {
			t.Errorf("resume from v%d: total executed = %d, want 17 (%d checkpointed)",
				version, report.Executed, snap.Executed)
		}
		d12 := report.FinalState.Get("D12")
		if v, _ := d12.Prop(workflow.PropValue); v.Str() != "7.8" {
			t.Errorf("resume from v%d: resolution %v", version, v)
		}
	}
}

// TestResumeTaskViaStorageService resumes through the message interface.
func TestResumeTaskViaStorageService(t *testing.T) {
	e := newEnv(t, true)
	if _, err := e.coord.RunTask(virolab.Task()); err != nil {
		t.Fatal(err)
	}
	report, err := e.coord.ResumeTask("T1")
	if err != nil {
		t.Fatal(err)
	}
	// The final checkpoint has one pending token (the successor of PSF);
	// resuming from it completes with no further executions... except the
	// final checkpoint was written right after PSF's third run, with CHOICE
	// pending; resuming fires CHOICE then END only.
	if !report.Completed {
		t.Errorf("resumed report: %+v", report)
	}
	if report.Executed != 17 {
		t.Errorf("resume re-ran activities: executed=%d", report.Executed)
	}
	if _, err := e.coord.ResumeTask("ghost"); err == nil {
		t.Error("resume of missing checkpoint succeeded")
	}
}

// TestResumeSurvivesProviderLoss resumes a checkpoint after the preferred
// provider disappeared: the resumed enactment re-plans and still finishes.
func TestResumeSurvivesProviderLoss(t *testing.T) {
	e := newEnv(t, true)
	if _, err := e.coord.RunTask(virolab.Task()); err != nil {
		t.Fatal(err)
	}
	snap, err := LoadCheckpointVersion(e.core.Storage, "T1", 3)
	if err != nil {
		t.Fatal(err)
	}
	// Kill the only P3DR provider before resuming.
	_ = e.grid.SetNodeUp("smp-1", false)
	report, err := e.coord.Resume(snap)
	if err != nil {
		t.Fatalf("resume: %v (trace %+v)", err, report)
	}
	if !report.Completed {
		t.Fatalf("resumed run incomplete: %+v", report.Trace)
	}
	if report.Replans < 1 {
		t.Error("expected a re-plan during the resumed run")
	}
}

// TestChaosChurn submits a stream of tasks while nodes randomly fail and
// recover between them. As long as some provider exists for each service
// (the backup container covers everything via P3DRALT), every task must
// eventually complete, re-planning as needed.
func TestChaosChurn(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	e := newEnv(t, false)
	rng := rand.New(rand.NewSource(99))
	completed, replans := 0, 0
	for i := 0; i < 8; i++ {
		// Random churn: each node independently up/down, but never both down.
		smpUp := rng.Intn(2) == 0
		clusterUp := !smpUp || rng.Intn(2) == 0
		if !smpUp && !clusterUp {
			clusterUp = true
		}
		_ = e.grid.SetNodeUp("smp-1", smpUp)
		_ = e.grid.SetNodeUp("cluster-1", clusterUp)

		task := virolab.Task()
		task.ID = fmt.Sprintf("T-chaos-%d", i)
		report, err := e.coord.RunTask(task)
		if err != nil {
			t.Fatalf("round %d (smp=%v cluster=%v): %v", i, smpUp, clusterUp, err)
		}
		if !report.Completed {
			t.Fatalf("round %d incomplete: %+v", i, report.Trace)
		}
		completed++
		replans += report.Replans
	}
	if completed != 8 {
		t.Errorf("completed = %d/8", completed)
	}
	// At least one round must have needed the re-planning path (smp down).
	if replans == 0 {
		t.Error("chaos never triggered a re-plan; churn too tame")
	}
}

// TestWallClockOverlapsConcurrentBranches verifies the accounting split: the
// three P3DR runs of each Fork overlap on the wall clock, so wall-clock time
// is strictly less than total compute time, and at least as long as the
// longest chain.
func TestWallClockOverlapsConcurrentBranches(t *testing.T) {
	e := newEnv(t, false)
	report, err := e.coord.RunTask(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	if report.WallClockTime <= 0 {
		t.Fatal("no wall clock recorded")
	}
	if report.WallClockTime >= report.SimulatedTime {
		t.Errorf("wall %.0f >= compute %.0f; concurrent branches did not overlap",
			report.WallClockTime, report.SimulatedTime)
	}
	// Sanity floor: the critical path includes every sequential stage once.
	if report.WallClockTime < report.SimulatedTime/4 {
		t.Errorf("wall %.0f implausibly small vs compute %.0f",
			report.WallClockTime, report.SimulatedTime)
	}
}

// TestSoftDeadline verifies the deadline flag: an impossible deadline is
// flagged (but the enactment still completes); a generous one is not.
func TestSoftDeadline(t *testing.T) {
	e := newEnv(t, false)
	tight := virolab.Task()
	tight.Case.Deadline = 1 // one simulated second: hopeless
	report, err := e.coord.RunTask(tight)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatal("soft deadline must not abort the enactment")
	}
	if !report.DeadlineMissed {
		t.Error("1s deadline not flagged")
	}
	if countTrace(report, "deadline", "") != 1 {
		t.Error("deadline trace event missing or duplicated")
	}

	loose := virolab.Task()
	loose.ID = "T-loose"
	loose.Case.Deadline = 1e9
	report, err = e.coord.RunTask(loose)
	if err != nil {
		t.Fatal(err)
	}
	if report.DeadlineMissed {
		t.Error("giant deadline flagged")
	}
}

// TestHistoryAwareDispatch lets the coordinator learn: the faster node fails
// every execution, so after a few tasks its record in the brokerage demotes
// it and later tasks stop trying it first.
func TestHistoryAwareDispatch(t *testing.T) {
	e := newEnv(t, false)
	// Both containers offer POD. The smp advertises a low failure rate and
	// a rock-bottom price, so matchmaking ranks it first — but in reality it
	// fails (almost) every execution. Only the brokerage's history reveals
	// the truth; this is exactly the "proven record of reliability" the
	// paper wants brokers to track.
	smp := e.grid.Node("smp-1")
	smp.FailureRate = 0.99
	smp.CostPerSec = 0.001
	e.grid.Node("cluster-1").CostPerSec = 10

	goal := `G.Classification = "Orientation File"`
	run := func(id string) *Report {
		c := workflow.NewCase(id, id).AddData(
			workflow.NewDataItem("D1", "POD-Parameter"),
			workflow.NewDataItem("D7", "2D Image"),
		)
		c.Goal = workflow.NewGoal(goal)
		pd := workflow.NewProcess(id)
		pd.Add(&workflow.Activity{ID: "b", Kind: workflow.KindBegin, Name: "BEGIN"})
		pd.Add(&workflow.Activity{ID: "p", Kind: workflow.KindEndUser, Name: "POD", Service: "POD"})
		pd.Add(&workflow.Activity{ID: "e", Kind: workflow.KindEnd, Name: "END"})
		pd.Connect("b", "p")
		pd.Connect("p", "e")
		report, err := e.coord.RunTask(&workflow.Task{ID: id, Name: id, Process: pd, Case: c})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		return report
	}

	// Warm-up rounds accumulate failure history for smp-1 (each run fails
	// there once, then succeeds on the backup).
	early := 0
	for i := 0; i < 4; i++ {
		early += run(fmt.Sprintf("warm-%d", i)).Failures
	}
	// The flaky node is tried first until three runs are on record (it may
	// even get lucky once), so at least two warm-up failures accumulate.
	if early < 2 {
		t.Fatalf("warm-up failures = %d; flaky node never tried?", early)
	}
	// With >= 3 recorded failures at 0%% success, the node is demoted: the
	// next runs go straight to the healthy container.
	late := 0
	for i := 0; i < 3; i++ {
		late += run(fmt.Sprintf("learned-%d", i)).Failures
	}
	if late != 0 {
		t.Errorf("failures after learning = %d, want 0 (history-aware dispatch)", late)
	}
}

// TestContractNetDispatch acquires resources by bidding: the coordinator
// sends CFPs to the brokerage's candidates, awards to the earliest predicted
// completion, and the enactment completes as usual. A stale brokerage
// snapshot is reconciled by refusals.
func TestContractNetDispatch(t *testing.T) {
	e := newEnv(t, false)
	cnp := &Coordinator{cfg: e.coord.cfg, ctx: e.coord.ctx}
	cnp.cfg.UseContractNet = true

	report, err := cnp.RunTask(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed || report.Executed != 17 {
		t.Fatalf("contract-net enactment: completed=%v executed=%d", report.Completed, report.Executed)
	}
	// Bids appear in the trace, and the fast smp wins the P3DR work (it
	// predicts ~half the cluster's time).
	bids := countTrace(report, "bid", "")
	if bids == 0 {
		t.Fatal("no bids recorded")
	}
	for _, ev := range report.Trace {
		if ev.Kind == "dispatch" && ev.Activity == "P3DR1" && ev.Detail != "ac-main" {
			t.Errorf("P3DR1 awarded to %s, want ac-main (fastest bid)", ev.Detail)
		}
	}

	// Stale snapshot: kill the smp node WITHOUT refreshing the brokerage.
	// Its container refuses the CFP, so the award falls to the backup and
	// the P3DR work re-plans onto P3DRALT.
	_ = e.grid.SetNodeUp("smp-1", false)
	task := virolab.Task()
	task.ID = "T-cnp-stale"
	report, err = cnp.RunTask(task)
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("stale-snapshot contract net did not complete: %+v", report.Trace)
	}
	if report.Replans == 0 {
		t.Error("expected a re-plan once the only P3DR bidder refused")
	}
}

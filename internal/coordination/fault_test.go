package coordination

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/grid"
	"repro/internal/services"
	"repro/internal/telemetry"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// TestBackoffDeterminism checks the backoff schedule: exponential doubling
// from the base, capped, jittered into [0.5, 1.0) of the nominal wait — and
// byte-for-byte reproducible from the policy seed.
func TestBackoffDeterminism(t *testing.T) {
	cases := []struct {
		name     string
		policy   Policy
		attempts int
	}{
		{"default cap", Policy{BackoffBase: 10, BackoffCap: DefaultBackoffCap, Seed: 1}, 8},
		{"tight cap", Policy{BackoffBase: 10, BackoffCap: 25, Seed: 2}, 6},
		{"base above cap", Policy{BackoffBase: 50, BackoffCap: 20, Seed: 3}, 4},
		{"sub-second base", Policy{BackoffBase: 0.25, BackoffCap: 2, Seed: 4}, 10},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sequence := func(visit int) []float64 {
				rng := tc.policy.retryStream("ACT", visit)
				var out []float64
				for a := 1; a <= tc.attempts; a++ {
					out = append(out, tc.policy.backoff(a, rng))
				}
				return out
			}
			first, second := sequence(1), sequence(1)
			nominal := tc.policy.BackoffBase
			for i := range first {
				if first[i] != second[i] {
					t.Fatalf("attempt %d: %g != %g (same seed diverged)", i+1, first[i], second[i])
				}
				n := nominal
				if n > tc.policy.BackoffCap {
					n = tc.policy.BackoffCap
				}
				if first[i] < n/2 || first[i] >= n {
					t.Errorf("attempt %d: wait %g outside [%g, %g)", i+1, first[i], n/2, n)
				}
				nominal *= 2
			}
			if other := sequence(2); other[0] == first[0] && other[1] == first[1] {
				t.Error("different visits produced identical jitter")
			}
		})
	}
}

// TestRetryAlternateCandidate injects a 100% failure rate on the node that
// matchmaking ranks first: every activity with two providers fails there
// once, backs off, and succeeds on the alternate candidate — no re-planning.
func TestRetryAlternateCandidate(t *testing.T) {
	e := newEnv(t, false)
	// cluster-1 scores highest (speed 1 / cost 0.01) but faults every run.
	if err := e.grid.SetFaults(&grid.FaultSpec{Seed: 1, Nodes: []string{"cluster-1"}, FailureRate: 1}); err != nil {
		t.Fatal(err)
	}
	report, err := e.coord.RunTaskContext(context.Background(), virolab.Task(),
		&Policy{BackoffBase: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed || report.Executed != 17 {
		t.Fatalf("completed=%v executed=%d", report.Completed, report.Executed)
	}
	if report.Replans != 0 {
		t.Errorf("replans = %d, want 0 (retries alone must recover)", report.Replans)
	}
	if report.Retries == 0 || report.Retries != report.Failures {
		t.Errorf("retries = %d, failures = %d; every failure should have been retried", report.Retries, report.Failures)
	}
	if report.BackoffWait <= 0 {
		t.Error("no simulated backoff accumulated")
	}
	if n := countTrace(report, "retry", ""); n != report.Retries {
		t.Errorf("retry trace events = %d, want %d", n, report.Retries)
	}
	// POD has both providers: its first dispatch goes to the doomed
	// ac-backup (cluster-1), the retry to ac-main.
	var podDispatches []string
	for _, ev := range report.Trace {
		if ev.Kind == "dispatch" && ev.Activity == "POD" {
			podDispatches = append(podDispatches, ev.Detail)
		}
	}
	if len(podDispatches) != 2 || podDispatches[0] != "ac-backup" || podDispatches[1] != "ac-main" {
		t.Errorf("POD dispatches = %v, want [ac-backup ac-main]", podDispatches)
	}
	if report.Policy.MaxRetries != 3 || report.Policy.BackoffCap != DefaultBackoffCap {
		t.Errorf("resolved policy = %+v", report.Policy)
	}
}

// TestRetriesExhaustedReplanCompletes makes the only P3DR provider fail
// every attempt: the retry budget runs out, the node is quarantined through
// the monitoring service, and the Figure-3 re-plan routes the reconstruction
// onto P3DRALT — the task still completes.
func TestRetriesExhaustedReplanCompletes(t *testing.T) {
	tel := telemetry.New()
	e := newEnvWith(t, false, func(cfg *Config) { cfg.Telemetry = tel })
	e.core.Monitoring.Telemetry = tel
	if err := e.grid.SetFaults(&grid.FaultSpec{Seed: 5, Nodes: []string{"smp-1"}, FailureRate: 1}); err != nil {
		t.Fatal(err)
	}
	report, err := e.coord.RunTask(virolab.Task())
	if err != nil {
		t.Fatal(err)
	}
	if !report.Completed {
		t.Fatalf("degraded-grid task did not complete: %+v", report)
	}
	if report.Replans == 0 {
		t.Fatal("expected a re-plan after retries exhausted")
	}
	if report.Retries == 0 {
		t.Error("expected retries before giving up")
	}
	if e.grid.Node("smp-1").Up() {
		t.Error("smp-1 not quarantined")
	}
	if h := e.core.Monitoring.NodeHealth("smp-1"); h.Status != services.HealthQuarantined {
		t.Errorf("smp-1 health = %+v, want quarantined", h)
	}
	if n := countTrace(report, "fault", ""); n == 0 {
		t.Error("no fault trace events")
	}
	// After the re-plan nothing may be dispatched to the quarantined node's
	// container.
	afterReplan := false
	for _, ev := range report.Trace {
		if ev.Kind == "replan" {
			afterReplan = true
		}
		if afterReplan && ev.Kind == "dispatch" && ev.Detail == "ac-main" {
			t.Fatalf("dispatch to quarantined ac-main after re-plan: %+v", ev)
		}
	}
	if got := tel.Counter("coordination.replans.fault").Value(); got < 1 {
		t.Errorf("coordination.replans.fault = %d", got)
	}
	if got := tel.Counter("coordination.retries").Value(); got == 0 {
		t.Error("coordination.retries not recorded")
	}
	if got := tel.Counter("monitoring.quarantines").Value(); got < 1 {
		t.Errorf("monitoring.quarantines = %d", got)
	}
}

// TestCancellationBeforeStart submits with an already-cancelled context.
func TestCancellationBeforeStart(t *testing.T) {
	tel := telemetry.New()
	e := newEnvWith(t, false, func(cfg *Config) { cfg.Telemetry = tel })
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	report, err := e.coord.RunTaskContext(ctx, virolab.Task(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if report == nil || !report.Cancelled || report.Executed != 0 {
		t.Fatalf("report = %+v", report)
	}
	if countTrace(report, "cancel", "") != 1 {
		t.Error("no cancel trace event")
	}
	if got := tel.Counter("coordination.tasks.cancelled").Value(); got != 1 {
		t.Errorf("coordination.tasks.cancelled = %d", got)
	}
}

// TestCancellationMidEnactment cancels from the steering hook after the
// first executed activity: the enactment unwinds between batches, reporting
// partial progress and Cancelled.
func TestCancellationMidEnactment(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := newEnvWith(t, false, func(cfg *Config) {
		orig := cfg.PostProcess
		cfg.PostProcess = func(act *workflow.Activity, produced []*workflow.DataItem, visit int) {
			orig(act, produced, visit)
			cancel()
		}
	})
	report, err := e.coord.RunTaskContext(ctx, virolab.Task(), nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if !report.Cancelled {
		t.Fatal("report not marked cancelled")
	}
	if report.Executed < 1 || report.Executed >= 17 {
		t.Fatalf("executed = %d, want partial progress", report.Executed)
	}
	if report.Completed {
		t.Fatal("cancelled task marked completed")
	}
}

// TestChaosVirolabFaultInjection is the acceptance scenario: a seeded 20%
// injected failure rate with crash-on-fault on the node hosting the only
// P3DR provider. The first reconstruction crashes the node mid-execution;
// retries back off, exhaust, the node is quarantined, and the Figure-3
// re-plan finishes the workflow on the surviving domain. Two fresh runs with
// the same seeds must agree on every aggregate.
func TestChaosVirolabFaultInjection(t *testing.T) {
	run := func() (*Report, *env, *telemetry.Registry) {
		tel := telemetry.New()
		e := newEnvWith(t, false, func(cfg *Config) { cfg.Telemetry = tel })
		e.core.Monitoring.Telemetry = tel
		// Fault seed 2 makes the first injected draw on smp-1 fall under
		// 0.2, so the crash strikes the first reconstruction deterministically.
		if err := e.grid.SetFaults(&grid.FaultSpec{Seed: 2, Nodes: []string{"smp-1"}, FailureRate: 0.2, CrashRate: 1}); err != nil {
			t.Fatal(err)
		}
		report, err := e.coord.RunTaskContext(context.Background(), virolab.Task(),
			&Policy{BackoffBase: 5, Seed: 99})
		if err != nil {
			t.Fatalf("chaos run failed: %v", err)
		}
		return report, e, tel
	}

	report, e, tel := run()
	if !report.Completed {
		t.Fatalf("chaos run did not complete: %+v", report)
	}
	crashes := e.grid.Crashes()
	if len(crashes) != 1 || crashes[0].Node != "smp-1" {
		t.Fatalf("crashes = %+v, want one on smp-1", crashes)
	}
	if report.Replans == 0 || report.Retries == 0 || report.Faults == 0 || report.BackoffWait <= 0 {
		t.Fatalf("replans=%d retries=%d faults=%d backoff=%g — fault path not exercised",
			report.Replans, report.Retries, report.Faults, report.BackoffWait)
	}
	for _, kind := range []string{"retry", "fault", "replan"} {
		if countTrace(report, kind, "") == 0 {
			t.Errorf("no %q trace events", kind)
		}
	}
	// The crashed node is out of the schedule after the re-plan.
	afterReplan := false
	for _, ev := range report.Trace {
		if ev.Kind == "replan" {
			afterReplan = true
		}
		if afterReplan && (ev.Kind == "dispatch" || ev.Kind == "complete") && strings.Contains(ev.Detail, "ac-main") {
			t.Fatalf("crashed node scheduled after re-plan: %+v", ev)
		}
	}
	if h := e.core.Monitoring.NodeHealth("smp-1"); h.Status != services.HealthQuarantined {
		t.Errorf("smp-1 health = %q, want quarantined", h.Status)
	}
	if got := tel.Counter("coordination.replans.fault").Value(); got != 1 {
		t.Errorf("coordination.replans.fault = %d", got)
	}
	// The alternate reconstruction service carried the workflow to the goal.
	usedAlt := false
	for _, ev := range report.Trace {
		if ev.Kind == "complete" && strings.Contains(ev.Activity, "P3DRALT") {
			usedAlt = true
		}
	}
	if !usedAlt {
		t.Error("P3DRALT never completed after the crash")
	}

	// Determinism: a second fresh environment with the same seeds agrees on
	// every aggregate.
	again, _, _ := run()
	if report.Executed != again.Executed || report.Failures != again.Failures ||
		report.Retries != again.Retries || report.Faults != again.Faults ||
		report.Replans != again.Replans || report.BackoffWait != again.BackoffWait ||
		report.SimulatedTime != again.SimulatedTime || report.WallClockTime != again.WallClockTime ||
		report.TotalCost != again.TotalCost {
		t.Fatalf("same-seed chaos runs diverged:\n1: %+v\n2: %+v", summary(report), summary(again))
	}
}

func summary(r *Report) map[string]float64 {
	return map[string]float64{
		"executed": float64(r.Executed), "failures": float64(r.Failures),
		"retries": float64(r.Retries), "faults": float64(r.Faults),
		"replans": float64(r.Replans), "backoff": r.BackoffWait,
		"simTime": r.SimulatedTime, "wall": r.WallClockTime, "cost": r.TotalCost,
	}
}

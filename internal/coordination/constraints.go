package coordination

import (
	"context"
	"errors"
	"fmt"

	"repro/internal/services"
	"repro/internal/workflow"
)

// Terminal reasons for constraint-driven aborts. They surface as the task's
// `reason` field in the engine journal and the HTTP task view.
const (
	ReasonBudgetExceeded = "budget_exceeded"
	ReasonDeadlineMissed = "deadline_missed"
)

// ConstraintError aborts an enactment that blew (or provably cannot meet) a
// case budget or hard deadline. It is terminal: unlike *nonExecutableError it
// never triggers re-planning — no alternate plan un-spends money or rewinds
// the clock.
type ConstraintError struct {
	Reason string // ReasonBudgetExceeded or ReasonDeadlineMissed
	Detail string
}

func (e *ConstraintError) Error() string {
	return fmt.Sprintf("coordination: %s: %s", e.Reason, e.Detail)
}

// ConstraintReason extracts the terminal reason from an enactment error, or
// "" when the error is not constraint-driven.
func ConstraintReason(err error) string {
	var ce *ConstraintError
	if errors.As(err, &ce) {
		return ce.Reason
	}
	return ""
}

// caseConstraints is the per-enactment budget/deadline ledger. It mirrors the
// report's spend and wall clock between batches (all access happens on the
// enactment goroutine or under its fork/join happens-before edges, so plain
// fields suffice) and flips pressure flags at 80% consumption, which preempts
// subsequent dispatches onto cheaper/faster candidates.
type caseConstraints struct {
	budget   float64 // 0 = unlimited
	deadline float64 // hard deadline in simulated seconds; 0 = none
	spent    float64 // mirrors report.TotalCost
	elapsed  float64 // mirrors report.WallClockTime

	costPressure bool
	timePressure bool
}

// pressureRatio is the consumed fraction of budget or deadline beyond which
// the scheduler preempts to cheaper (resp. faster) candidates.
const pressureRatio = 0.8

// newCaseConstraints builds the ledger for a constrained case, seeded from
// the report's restored accounting (resume must not re-charge checkpointed
// spend). Returns nil for unconstrained cases — the nil ledger keeps the
// legacy dispatch path byte-for-byte identical.
func newCaseConstraints(cd *workflow.CaseDescription, report *Report) *caseConstraints {
	if cd == nil || !cd.Constrained() {
		return nil
	}
	cc := &caseConstraints{
		budget:  cd.Budget,
		spent:   report.TotalCost,
		elapsed: report.WallClockTime,
	}
	if cd.HardDeadline {
		cc.deadline = cd.Deadline
	}
	return cc
}

// remainingDeadline returns the simulated seconds left before the hard
// deadline, or 0 when the case has none (the scorer's "unconstrained").
func (cc *caseConstraints) remainingDeadline() float64 {
	if cc.deadline <= 0 {
		return 0
	}
	rem := cc.deadline - cc.elapsed
	if rem <= 0 {
		rem = 1e-9 // violation fires right after the batch; stay "constrained"
	}
	return rem
}

// observe refreshes the ledger from the report after a batch and reports
// pressure transitions so the caller can trace/count the preemption once.
func (cc *caseConstraints) observe(report *Report) (newCostPressure, newTimePressure bool) {
	cc.spent = report.TotalCost
	cc.elapsed = report.WallClockTime
	if cc.budget > 0 && !cc.costPressure && cc.spent >= pressureRatio*cc.budget {
		cc.costPressure = true
		newCostPressure = true
	}
	if cc.deadline > 0 && !cc.timePressure && cc.elapsed >= pressureRatio*cc.deadline {
		cc.timePressure = true
		newTimePressure = true
	}
	return
}

// violation returns the terminal constraint error once the budget or the
// hard deadline is actually blown, or nil.
func (cc *caseConstraints) violation() *ConstraintError {
	if cc.budget > 0 && cc.spent > cc.budget {
		return &ConstraintError{Reason: ReasonBudgetExceeded,
			Detail: fmt.Sprintf("spent %.2f of budget %.2f", cc.spent, cc.budget)}
	}
	if cc.deadline > 0 && cc.elapsed > cc.deadline {
		return &ConstraintError{Reason: ReasonDeadlineMissed,
			Detail: fmt.Sprintf("elapsed %.0fs of deadline %.0fs", cc.elapsed, cc.deadline)}
	}
	return nil
}

// dataRefs extracts the Size/Location of an activity's bound inputs for the
// transfer-cost term of candidate scoring.
func dataRefs(act *workflow.Activity, state *workflow.State) []services.DataRef {
	var refs []services.DataRef
	for _, name := range act.Inputs {
		item := state.Get(name)
		if item == nil {
			continue
		}
		ref := services.DataRef{}
		if size, ok := item.Prop(workflow.PropSize); ok {
			if n, isNum := size.Num(); isNum {
				ref.SizeMB = n / 1e6
			}
		}
		if loc, ok := item.Prop(workflow.PropLocation); ok {
			ref.Location = loc.Str()
		}
		if ref.SizeMB > 0 || ref.Location != "" {
			refs = append(refs, ref)
		}
	}
	return refs
}

// costRank re-orders the candidate list for a constrained case: estimated
// ETA (hardware + history + data transfer) and spend per candidate, cheapest
// feasible first — or fastest first under deadline pressure. It also returns
// the cheapest estimated cost so dispatch can detect an infeasible budget
// before consuming any retry.
func (c *Coordinator) costRank(ctx context.Context, act *workflow.Activity, svc *workflow.Service, state *workflow.State, cands []services.Candidate, cc *caseConstraints) ([]services.Candidate, float64) {
	c.mCostSchedules.Inc()
	scored := services.ScoreCandidates(cands, svc.BaseTime, dataRefs(act, state),
		c.perfStats(ctx, act.Service, cands), cc.remainingDeadline())
	ranked := services.RankCostAware(scored, cc.timePressure)
	out := make([]services.Candidate, len(ranked))
	minCost := 0.0
	for i, sc := range ranked {
		out[i] = sc.Candidate
		if i == 0 || sc.EstCost < minCost {
			minCost = sc.EstCost
		}
	}
	return out, minCost
}

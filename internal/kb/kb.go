// Package kb is the system knowledge base of Section 3: the archive where
// process descriptions are stored and versioned ("Process descriptions can
// be archived using the system knowledge base"). Plans are stored in their
// PDL text form, keyed by name, with every revision kept.
package kb

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/pdl"
	"repro/internal/plantree"
	"repro/internal/workflow"
)

// Entry is one archived process description revision.
type Entry struct {
	Name    string
	Version int
	PDL     string
	Creator string
	Comment string
}

// Archive stores process descriptions. Safe for concurrent use.
type Archive struct {
	mu      sync.Mutex
	entries map[string][]Entry
}

// NewArchive returns an empty archive.
func NewArchive() *Archive {
	return &Archive{entries: make(map[string][]Entry)}
}

// Put validates and archives a process description, returning its version.
func (a *Archive) Put(name, creator, comment string, p *workflow.ProcessDescription) (int, error) {
	if name == "" {
		return 0, fmt.Errorf("kb: empty plan name")
	}
	text, err := pdl.FormatProcess(p)
	if err != nil {
		return 0, fmt.Errorf("kb: plan %q does not serialize: %w", name, err)
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	version := len(a.entries[name]) + 1
	a.entries[name] = append(a.entries[name], Entry{
		Name: name, Version: version, PDL: text, Creator: creator, Comment: comment,
	})
	return version, nil
}

// PutTree archives a plan tree.
func (a *Archive) PutTree(name, creator, comment string, tree *plantree.Node) (int, error) {
	p, err := plantree.ToProcess(name, tree)
	if err != nil {
		return 0, err
	}
	return a.Put(name, creator, comment, p)
}

// Get returns the requested version (0 = latest), parsed back into a
// process description.
func (a *Archive) Get(name string, version int) (*workflow.ProcessDescription, Entry, error) {
	a.mu.Lock()
	revs := a.entries[name]
	a.mu.Unlock()
	if len(revs) == 0 {
		return nil, Entry{}, fmt.Errorf("kb: no plan named %q", name)
	}
	if version == 0 {
		version = len(revs)
	}
	if version < 1 || version > len(revs) {
		return nil, Entry{}, fmt.Errorf("kb: plan %q has no version %d", name, version)
	}
	e := revs[version-1]
	p, err := pdl.ParseProcess(name, e.PDL)
	if err != nil {
		return nil, Entry{}, fmt.Errorf("kb: archived plan %q v%d corrupt: %w", name, version, err)
	}
	return p, e, nil
}

// Versions returns how many revisions of the plan exist.
func (a *Archive) Versions(name string) int {
	a.mu.Lock()
	defer a.mu.Unlock()
	return len(a.entries[name])
}

// Names returns the archived plan names with a prefix, sorted.
func (a *Archive) Names(prefix string) []string {
	a.mu.Lock()
	defer a.mu.Unlock()
	var names []string
	for n := range a.entries {
		if strings.HasPrefix(n, prefix) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// Delete removes a plan and all revisions.
func (a *Archive) Delete(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.entries, name)
}

package kb

import (
	"strings"
	"testing"

	"repro/internal/plantree"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func TestArchiveRoundTrip(t *testing.T) {
	a := NewArchive()
	v, err := a.Put("3DSD", "hyu", "initial", virolab.Process())
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("version = %d, want 1", v)
	}
	p, e, err := a.Get("3DSD", 0)
	if err != nil {
		t.Fatal(err)
	}
	if e.Creator != "hyu" || e.Comment != "initial" || e.Version != 1 {
		t.Errorf("entry = %+v", e)
	}
	if got := p.CountKind(workflow.KindEndUser); got != 7 {
		t.Errorf("restored end-user activities = %d, want 7", got)
	}
	tree, err := plantree.FromProcess(p)
	if err != nil {
		t.Fatal(err)
	}
	if tree.String() != "(seq POD P3DR (iter POR (conc P3DR P3DR P3DR) PSF))" {
		t.Errorf("restored tree = %s", tree)
	}
}

func TestArchiveVersioning(t *testing.T) {
	a := NewArchive()
	if _, err := a.PutTree("plan", "u", "v1", plantree.Seq(plantree.Activity("A"), plantree.Activity("B"))); err != nil {
		t.Fatal(err)
	}
	if _, err := a.PutTree("plan", "u", "v2", plantree.Seq(plantree.Activity("A"), plantree.Activity("B"), plantree.Activity("C"))); err != nil {
		t.Fatal(err)
	}
	if a.Versions("plan") != 2 {
		t.Errorf("versions = %d", a.Versions("plan"))
	}
	p1, _, err := a.Get("plan", 1)
	if err != nil {
		t.Fatal(err)
	}
	p2, _, err := a.Get("plan", 0)
	if err != nil {
		t.Fatal(err)
	}
	if p1.CountKind(workflow.KindEndUser) != 2 || p2.CountKind(workflow.KindEndUser) != 3 {
		t.Error("version contents mixed up")
	}
	if _, _, err := a.Get("plan", 9); err == nil {
		t.Error("phantom version returned")
	}
	if _, _, err := a.Get("nope", 0); err == nil {
		t.Error("phantom plan returned")
	}
}

func TestArchiveNamesAndDelete(t *testing.T) {
	a := NewArchive()
	_, _ = a.PutTree("bio/3dsd", "u", "", plantree.Activity("A"))
	_, _ = a.PutTree("bio/other", "u", "", plantree.Activity("B"))
	_, _ = a.PutTree("misc", "u", "", plantree.Activity("C"))
	names := a.Names("bio/")
	if len(names) != 2 || names[0] != "bio/3dsd" {
		t.Errorf("names = %v", names)
	}
	if got := a.Names(""); len(got) != 3 {
		t.Errorf("all names = %v", got)
	}
	a.Delete("misc")
	if a.Versions("misc") != 0 {
		t.Error("delete failed")
	}
}

func TestArchiveRejections(t *testing.T) {
	a := NewArchive()
	if _, err := a.Put("", "u", "", virolab.Process()); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := a.Put("bad", "u", "", workflow.NewProcess("empty")); err == nil {
		t.Error("invalid process accepted")
	}
	if _, err := a.PutTree("bad", "u", "", plantree.Seq()); err == nil {
		t.Error("invalid tree accepted")
	}
	if !strings.Contains(func() string {
		_, err := a.Put("", "u", "", virolab.Process())
		return err.Error()
	}(), "empty plan name") {
		t.Error("error message unclear")
	}
}

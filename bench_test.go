package repro

// The experiment harness: one benchmark per table and figure of the paper's
// evaluation, plus ablation benches for the design choices called out in
// DESIGN.md. Each benchmark prints the quantities the paper reports as
// custom metrics, so `go test -bench=. -benchmem` regenerates the numbers
// next to the timing data (see EXPERIMENTS.md for paper-vs-measured).

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/agent"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/httpapi"
	"repro/internal/ontology"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/plantree"
	"repro/internal/services"
	"repro/internal/store"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

// table2Params are the paper's Table 1 settings.
func table2Params() planner.Params { return planner.DefaultParams() }

// reducedParams keep iteration cheap for per-op benches that embed a full
// GP run.
func reducedParams() planner.Params {
	p := planner.DefaultParams()
	p.PopulationSize = 120
	p.Generations = 15
	return p
}

// BenchmarkTable1Defaults measures constructing a planner at the Table 1
// settings (a sanity benchmark that also asserts the parameter block).
func BenchmarkTable1Defaults(b *testing.B) {
	problem := virolab.Problem()
	for i := 0; i < b.N; i++ {
		p := table2Params()
		if p.PopulationSize != 200 || p.Generations != 20 || p.Smax != 40 {
			b.Fatal("Table 1 parameters drifted")
		}
		if _, err := planner.New(problem, p); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2GPPlanning is the paper's Section 5 experiment: one full GP
// run per iteration at the Table 1 settings on the virus-reconstruction
// planning problem. The reported metrics are the Table 2 columns.
func BenchmarkTable2GPPlanning(b *testing.B) {
	problem := virolab.Problem()
	var sum planner.Summary
	results := make([]*planner.Result, 0, b.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := table2Params()
		p.Seed = int64(i + 1)
		gp, err := planner.New(problem, p)
		if err != nil {
			b.Fatal(err)
		}
		r, err := gp.RunContext(context.Background())
		if err != nil {
			b.Fatal(err)
		}
		results = append(results, r)
	}
	b.StopTimer()
	sum = planner.Summarize(results)
	b.ReportMetric(sum.AvgFitness, "avg-fitness")
	b.ReportMetric(sum.AvgValidity, "avg-validity")
	b.ReportMetric(sum.AvgGoalFitness, "avg-goal")
	b.ReportMetric(sum.AvgSize, "avg-size")
}

// BenchmarkBaselineForwardSearch plans the same problem with breadth-first
// forward search (the hand-scripted-coordination stand-in).
func BenchmarkBaselineForwardSearch(b *testing.B) {
	problem := virolab.Problem()
	var size int
	for i := 0; i < b.N; i++ {
		plan, err := planner.ForwardSearch(problem, 12)
		if err != nil {
			b.Fatal(err)
		}
		size = plan.Size()
	}
	b.ReportMetric(float64(size), "plan-size")
}

// BenchmarkBaselineRandomSearch gives random search the same evaluation
// budget as one Table 1 GP run.
func BenchmarkBaselineRandomSearch(b *testing.B) {
	problem := virolab.Problem()
	p := table2Params()
	budget := p.PopulationSize * (p.Generations + 1)
	var best planner.Evaluation
	for i := 0; i < b.N; i++ {
		p.Seed = int64(i + 1)
		r, err := planner.RandomSearch(problem, p, budget)
		if err != nil {
			b.Fatal(err)
		}
		best = r.Best.Eval
	}
	b.ReportMetric(best.Fitness, "best-fitness")
	b.ReportMetric(best.FG, "best-goal")
}

// benchEnv builds the full Figure 1 environment for the flow benches.
func benchEnv(b *testing.B, g *grid.Grid) *core.Environment {
	b.Helper()
	opts := core.Options{
		Catalog:     virolab.Catalog(),
		Planner:     reducedParams(),
		PostProcess: virolab.ResolutionHook(nil),
	}
	if g != nil {
		opts.Grid = g
	}
	env, err := core.NewEnvironment(opts)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(env.Close)
	return env
}

// BenchmarkFig2PlanningRequest measures the Figure 2 interaction: the
// coordination service requesting a plan from the planning service and
// enacting the result (task submitted with NeedPlanning).
func BenchmarkFig2PlanningRequest(b *testing.B) {
	env := benchEnv(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := &workflow.Task{
			ID:           fmt.Sprintf("T-fig2-%d", i),
			Name:         "fig2",
			Case:         virolab.Case(),
			NeedPlanning: true,
		}
		report, err := env.SubmitContext(context.Background(), task, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !report.Completed {
			b.Fatalf("not completed: %+v", report)
		}
	}
}

// BenchmarkFig3Replanning measures the Figure 3 flow: the sole P3DR
// provider is down, the planning service verifies executability through
// brokerage and containers, and the re-planned workflow completes on the
// backup service.
func BenchmarkFig3Replanning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		g := grid.New(int64(i + 1))
		_ = g.AddNode(&grid.Node{ID: "main", Hardware: grid.Hardware{Type: "SMP", Speed: 2}})
		_ = g.AddNode(&grid.Node{ID: "backup", Hardware: grid.Hardware{Type: "PC-cluster", Speed: 1}})
		_ = g.AddContainer(&grid.Container{ID: "ac-main", NodeID: "main",
			Services: []string{"POD", "P3DR", "POR", "PSF"}})
		_ = g.AddContainer(&grid.Container{ID: "ac-backup", NodeID: "backup",
			Services: []string{"POD", "POR", "PSF", "P3DRALT"}})
		catalog := virolab.Catalog()
		p3dr := catalog.Get("P3DR")
		catalog.Add(&workflow.Service{Name: "P3DRALT", Inputs: p3dr.Inputs, Outputs: p3dr.Outputs, BaseTime: p3dr.BaseTime})
		env, err := core.NewEnvironment(core.Options{
			Grid: g, Catalog: catalog, Planner: reducedParams(),
			PostProcess: virolab.ResolutionHook(nil),
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = g.SetNodeUp("main", false)
		b.StartTimer()

		report, err := env.SubmitContext(context.Background(), virolab.Task(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if report.Replans != 1 || !report.Completed {
			b.Fatalf("replans=%d completed=%v", report.Replans, report.Completed)
		}
		b.StopTimer()
		env.Close()
		b.StartTimer()
	}
}

// BenchmarkFig4to7Conversion measures the process-description/plan-tree
// conversions of Figures 4-7 (one canonical fragment per construct, both
// directions).
func BenchmarkFig4to7Conversion(b *testing.B) {
	trees := []*plantree.Node{
		plantree.Seq(plantree.Activity("A"), plantree.Activity("B"), plantree.Activity("C")), // Fig 4
		plantree.Conc(plantree.Activity("A"), plantree.Activity("B")),                        // Fig 5
		plantree.Sel(plantree.Activity("A"), plantree.Activity("B")),                         // Fig 6
		plantree.Iter(plantree.Activity("A"), plantree.Activity("B")),                        // Fig 7
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, tr := range trees {
			p, err := plantree.ToProcess("fig", tr)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := plantree.FromProcess(p); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkFig8Crossover measures the subtree crossover of Figure 8.
func BenchmarkFig8Crossover(b *testing.B) {
	gpParams := table2Params()
	rng := newRand(1)
	a := virolab.PlanTree()
	c := virolab.PlanTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		planner.Crossover(rng, a, c, gpParams.Smax)
	}
}

// BenchmarkFig9Mutation measures the subtree mutation of Figure 9.
func BenchmarkFig9Mutation(b *testing.B) {
	gpParams := table2Params()
	rng := newRand(2)
	services := virolab.Catalog().Names()
	tree := virolab.PlanTree()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		planner.Mutate(rng, tree, services, 0.05, gpParams.Smax)
	}
}

// BenchmarkFig10Enactment measures one full enactment of the Figure 10
// process description, including the three refinement iterations.
func BenchmarkFig10Enactment(b *testing.B) {
	env := benchEnv(b, nil)
	var executed int
	var wall, compute float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		task := virolab.Task()
		task.ID = fmt.Sprintf("T-fig10-%d", i)
		report, err := env.SubmitContext(context.Background(), task, nil)
		if err != nil {
			b.Fatal(err)
		}
		if !report.Completed {
			b.Fatal("enactment incomplete")
		}
		executed = report.Executed
		wall = report.WallClockTime
		compute = report.SimulatedTime
	}
	b.ReportMetric(float64(executed), "activity-executions")
	b.ReportMetric(wall, "wallclock-s")
	b.ReportMetric(compute, "compute-s")
}

// BenchmarkEnactOverhead compares the Figure 10 enactment bare (telemetry
// disabled, every record site paying only a nil check) against the default
// instrumented environment; the acceptance bar is <5% overhead.
func BenchmarkEnactOverhead(b *testing.B) {
	for _, instrumented := range []bool{false, true} {
		name := "bare"
		if instrumented {
			name = "instrumented"
		}
		b.Run(name, func(b *testing.B) {
			env, err := core.NewEnvironment(core.Options{
				Catalog:     virolab.Catalog(),
				Planner:     reducedParams(),
				PostProcess: virolab.ResolutionHook(nil),
				NoTelemetry: !instrumented,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				task := virolab.Task()
				task.ID = fmt.Sprintf("T-ovh-%s-%d", name, i)
				report, err := env.SubmitContext(context.Background(), task, nil)
				if err != nil {
					b.Fatal(err)
				}
				if !report.Completed {
					b.Fatal("enactment incomplete")
				}
			}
		})
	}
}

// BenchmarkFig11PlanTree measures recovering the Figure 11 plan tree from
// the Figure 10 graph.
func BenchmarkFig11PlanTree(b *testing.B) {
	p := virolab.Process()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tree, err := plantree.FromProcess(p)
		if err != nil {
			b.Fatal(err)
		}
		if tree.Size() != 10 {
			b.Fatalf("size = %d", tree.Size())
		}
	}
}

// BenchmarkFig12ShellBuild measures building the Figure 12 ontology shell.
func BenchmarkFig12ShellBuild(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kb := ontology.GridShell()
		if c, _ := kb.Stats(); c != 10 {
			b.Fatal("shell class count drifted")
		}
	}
}

// BenchmarkFig13InstanceLoad measures populating the shell with the Figure
// 13 instances plus reference validation and JSON round trip.
func BenchmarkFig13InstanceLoad(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		kb, err := virolab.Ontology()
		if err != nil {
			b.Fatal(err)
		}
		data, err := kb.MarshalJSON()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := ontology.Decode(data); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Ablation benches (design choices called out in DESIGN.md) ------------

// BenchmarkAblationSmax sweeps the tree-size cap.
func BenchmarkAblationSmax(b *testing.B) {
	for _, smax := range []int{10, 20, 40, 80} {
		b.Run(fmt.Sprintf("smax=%d", smax), func(b *testing.B) {
			problem := virolab.Problem()
			var sum planner.Summary
			results := make([]*planner.Result, 0, b.N)
			for i := 0; i < b.N; i++ {
				p := reducedParams()
				p.Smax = smax
				p.Seed = int64(i + 1)
				gp, err := planner.New(problem, p)
				if err != nil {
					b.Fatal(err)
				}
				r, err := gp.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, r)
			}
			sum = planner.Summarize(results)
			b.ReportMetric(sum.AvgFitness, "avg-fitness")
			b.ReportMetric(sum.AvgSize, "avg-size")
			b.ReportMetric(float64(sum.PerfectGoal)/float64(sum.Runs), "goal-rate")
		})
	}
}

// BenchmarkAblationOperators compares full GP against mutation-only and
// crossover-only evolution.
func BenchmarkAblationOperators(b *testing.B) {
	configs := []struct {
		name    string
		cx, mut float64
	}{
		{"full", 0.7, 0.001},
		{"mutation-only", 0, 0.01},
		{"crossover-only", 0.7, 0},
	}
	for _, cfg := range configs {
		b.Run(cfg.name, func(b *testing.B) {
			problem := virolab.Problem()
			results := make([]*planner.Result, 0, b.N)
			for i := 0; i < b.N; i++ {
				p := reducedParams()
				p.CrossoverRate = cfg.cx
				p.MutationRate = cfg.mut
				p.Seed = int64(i + 1)
				gp, err := planner.New(problem, p)
				if err != nil {
					b.Fatal(err)
				}
				r, err := gp.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, r)
			}
			sum := planner.Summarize(results)
			b.ReportMetric(sum.AvgFitness, "avg-fitness")
			b.ReportMetric(float64(sum.PerfectGoal)/float64(sum.Runs), "goal-rate")
		})
	}
}

// BenchmarkAblationSelection compares tournament and roulette selection.
func BenchmarkAblationSelection(b *testing.B) {
	for _, scheme := range []planner.SelectionScheme{planner.SelectTournament, planner.SelectRoulette} {
		b.Run(scheme.String(), func(b *testing.B) {
			problem := virolab.Problem()
			results := make([]*planner.Result, 0, b.N)
			for i := 0; i < b.N; i++ {
				p := reducedParams()
				p.Selection = scheme
				p.Seed = int64(i + 1)
				gp, err := planner.New(problem, p)
				if err != nil {
					b.Fatal(err)
				}
				r, err := gp.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, r)
			}
			sum := planner.Summarize(results)
			b.ReportMetric(sum.AvgFitness, "avg-fitness")
			b.ReportMetric(float64(sum.PerfectGoal)/float64(sum.Runs), "goal-rate")
		})
	}
}

// BenchmarkAblationFlowEnum sweeps the flow-enumeration cap of the fitness
// simulation.
func BenchmarkAblationFlowEnum(b *testing.B) {
	for _, maxFlows := range []int{1, 4, 32} {
		b.Run(fmt.Sprintf("maxflows=%d", maxFlows), func(b *testing.B) {
			problem := virolab.Problem()
			results := make([]*planner.Result, 0, b.N)
			for i := 0; i < b.N; i++ {
				p := reducedParams()
				p.MaxFlows = maxFlows
				p.Seed = int64(i + 1)
				gp, err := planner.New(problem, p)
				if err != nil {
					b.Fatal(err)
				}
				r, err := gp.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, r)
			}
			sum := planner.Summarize(results)
			b.ReportMetric(sum.AvgFitness, "avg-fitness")
			b.ReportMetric(float64(sum.PerfectGoal)/float64(sum.Runs), "goal-rate")
		})
	}
}

// BenchmarkAblationStrictConcurrency compares strict (order-enumerating)
// against lenient concurrent-node simulation.
func BenchmarkAblationStrictConcurrency(b *testing.B) {
	for _, strict := range []bool{true, false} {
		name := "strict"
		if !strict {
			name = "lenient"
		}
		b.Run(name, func(b *testing.B) {
			problem := virolab.Problem()
			results := make([]*planner.Result, 0, b.N)
			for i := 0; i < b.N; i++ {
				p := reducedParams()
				p.StrictConcurrency = strict
				p.Seed = int64(i + 1)
				gp, err := planner.New(problem, p)
				if err != nil {
					b.Fatal(err)
				}
				r, err := gp.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				results = append(results, r)
			}
			sum := planner.Summarize(results)
			b.ReportMetric(sum.AvgFitness, "avg-fitness")
			b.ReportMetric(sum.AvgValidity, "avg-validity")
		})
	}
}

// BenchmarkAblationPlanReuse compares a cold planning service against one
// whose population is seeded with a remembered plan (the Section 3.3
// "adapt an existing process description" behaviour) under a small budget.
func BenchmarkAblationPlanReuse(b *testing.B) {
	variants := []struct {
		name   string
		seed   bool
		elites int
	}{
		{"cold", false, 0},
		{"seeded", true, 0},
		{"seeded-elite", true, 1},
	}
	for _, v := range variants {
		b.Run(v.name, func(b *testing.B) {
			problem := virolab.Problem()
			goals := 0
			for i := 0; i < b.N; i++ {
				small := planner.DefaultParams()
				small.PopulationSize = 20
				small.Generations = 3
				small.Elites = v.elites
				small.Seed = int64(i + 1)
				gp, err := planner.New(problem, small)
				if err != nil {
					b.Fatal(err)
				}
				if v.seed {
					gp.Seed(plantree.Seq(
						plantree.Activity("POD"), plantree.Activity("P3DR"),
						plantree.Activity("P3DR"), plantree.Activity("PSF"),
					))
				}
				r, err := gp.RunContext(context.Background())
				if err != nil {
					b.Fatal(err)
				}
				if r.Best.Eval.FG >= 1 {
					goals++
				}
			}
			b.ReportMetric(float64(goals)/float64(b.N), "goal-rate")
		})
	}
}

// BenchmarkAblationAcquisition compares the two resource-acquisition modes:
// matchmaking ranking versus contract-net bidding, over full Figure 10
// enactments.
func BenchmarkAblationAcquisition(b *testing.B) {
	for _, cnp := range []bool{false, true} {
		name := "matchmaking"
		if cnp {
			name = "contract-net"
		}
		b.Run(name, func(b *testing.B) {
			env, err := core.NewEnvironment(core.Options{
				Catalog:        virolab.Catalog(),
				Planner:        reducedParams(),
				PostProcess:    virolab.ResolutionHook(nil),
				UseContractNet: cnp,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			var wall float64
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				task := virolab.Task()
				task.ID = fmt.Sprintf("T-acq-%s-%d", name, i)
				report, err := env.SubmitContext(context.Background(), task, nil)
				if err != nil {
					b.Fatal(err)
				}
				if !report.Completed {
					b.Fatal("incomplete")
				}
				wall = report.WallClockTime
			}
			b.ReportMetric(wall, "wallclock-s")
		})
	}
}

// BenchmarkEngineThroughput measures the enactment engine's sustained rate:
// a 200-task burst submitted through the admission queue, timed until the
// last task settles, at three worker-pool sizes. The tasks/sec metric is the
// quantity the worker-pool sizing advice in README.md is based on. The
// engine journals through the durable file backend, so every admission and
// completion rides the group-committed write-ahead log — the number includes
// real fsyncs.
func BenchmarkEngineThroughput(b *testing.B) {
	const burst = 200
	text, err := pdl.Format(virolab.PlanTree())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{1, 4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			env, err := core.NewEnvironment(core.Options{
				Catalog:       virolab.Catalog(),
				Planner:       reducedParams(),
				PostProcess:   virolab.ResolutionHook(nil),
				Workers:       workers,
				QueueCapacity: burst * 2,
				StoreDSN:      "file:" + b.TempDir(),
				StoreFlush:    store.FlushConfig{Interval: time.Millisecond},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				// Task construction (PDL parse, case setup) happens off the
				// clock: the metric is the engine's admission+enactment rate,
				// not the parser's.
				b.StopTimer()
				ids := make([]string, burst)
				tasks := make([]*workflow.Task, burst)
				for j := range tasks {
					id := fmt.Sprintf("T-thr-%d-%d", i, j)
					process, err := pdl.ParseProcess(id, text)
					if err != nil {
						b.Fatal(err)
					}
					task := virolab.Task()
					task.ID = id
					task.Process = process
					ids[j] = id
					tasks[j] = task
				}
				b.StartTimer()
				// The burst arrives from concurrent clients — as it would in
				// the HTTP API — so the admission appends share group-commit
				// batches instead of paying one fsync wait per task.
				const submitters = 16
				var wg sync.WaitGroup
				errs := make(chan error, submitters)
				for w := 0; w < submitters; w++ {
					wg.Add(1)
					go func(w int) {
						defer wg.Done()
						for j := w; j < burst; j += submitters {
							if _, err := env.Engine.Submit(engine.Submission{Task: tasks[j]}); err != nil {
								errs <- err
								return
							}
						}
					}(w)
				}
				wg.Wait()
				close(errs)
				if err := <-errs; err != nil {
					b.Fatal(err)
				}
				for _, id := range ids {
					for {
						st, err := env.Engine.Task(id)
						if err != nil {
							b.Fatal(err)
						}
						if st.Status == engine.StatusCompleted {
							break
						}
						if st.Status == engine.StatusFailed || st.Status == engine.StatusCancelled {
							b.Fatalf("task %s ended %s: %s", id, st.Status, st.Error)
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*burst)/b.Elapsed().Seconds(), "tasks/sec")
		})
	}
}

// BenchmarkJournalAppend isolates the storage layer's append path from the
// engine: one journal-sized record per operation, on each backend, with the
// writers either serialized against their own fsync (unbatched: MaxBatch 1,
// one caller) or arriving from 16 concurrent writers that share
// group-commit batches (batched: the 1 ms linger the engine uses). The gap
// between the two modes on the durable backends is the group commit win;
// mem is the no-durability control.
func BenchmarkJournalAppend(b *testing.B) {
	val := []byte(`{"event":"accepted","taskId":"T-bench","seq":42,"priority":1,` +
		`"task":{"id":"T-bench","name":"journal append benchmark payload","goal":["G.Classification"]}}`)
	for _, kind := range []string{"mem", "file", "bolt"} {
		for _, batched := range []bool{false, true} {
			mode := "unbatched"
			if batched {
				mode = "batched"
			}
			b.Run(fmt.Sprintf("backend=%s/mode=%s", kind, mode), func(b *testing.B) {
				var dsn string
				switch kind {
				case "mem":
					dsn = "mem:"
				case "file":
					dsn = "file:" + b.TempDir()
				case "bolt":
					dsn = "bolt:" + filepath.Join(b.TempDir(), "kv.db")
				}
				flush := store.FlushConfig{MaxBatch: 1}
				if batched {
					flush = store.FlushConfig{Interval: time.Millisecond}
				}
				s, err := store.Open(dsn, store.Options{Flush: flush})
				if err != nil {
					b.Fatal(err)
				}
				defer s.Close()
				b.ReportAllocs()
				b.ResetTimer()
				if !batched {
					for i := 0; i < b.N; i++ {
						if _, err := s.Put("journal/T-serial", val); err != nil {
							b.Fatal(err)
						}
					}
				} else {
					const writers = 16
					var wg sync.WaitGroup
					errs := make(chan error, writers)
					for w := 0; w < writers; w++ {
						wg.Add(1)
						go func(w int) {
							defer wg.Done()
							key := fmt.Sprintf("journal/T-%d", w)
							for i := w; i < b.N; i += writers {
								if _, err := s.Put(key, val); err != nil {
									errs <- err
									return
								}
							}
						}(w)
					}
					wg.Wait()
					close(errs)
					if err := <-errs; err != nil {
						b.Fatal(err)
					}
				}
				b.StopTimer()
				b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "appends/sec")
			})
		}
	}
}

// BenchmarkEngineThroughputMultiTenant is the same 200-task burst split over
// four weighted tenants, so the deficit-round-robin queue (rather than a
// single FIFO flow) is on the dispatch path. Comparing its tasks/sec against
// BenchmarkEngineThroughput at the same worker count bounds the fair queue's
// scheduling overhead.
func BenchmarkEngineThroughputMultiTenant(b *testing.B) {
	const burst = 200
	tenants := []string{"alpha", "beta", "gamma", "delta"}
	text, err := pdl.Format(virolab.PlanTree())
	if err != nil {
		b.Fatal(err)
	}
	for _, workers := range []int{4, 16} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			env, err := core.NewEnvironment(core.Options{
				Catalog:       virolab.Catalog(),
				Planner:       reducedParams(),
				PostProcess:   virolab.ResolutionHook(nil),
				Workers:       workers,
				QueueCapacity: burst * 2,
				Tenants: map[string]engine.TenantConfig{
					"alpha": {Weight: 4},
					"beta":  {Weight: 2},
					"gamma": {Weight: 1},
					"delta": {Weight: 1},
				},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer env.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]string, burst)
				for j := range ids {
					id := fmt.Sprintf("T-mt-%d-%d", i, j)
					process, err := pdl.ParseProcess(id, text)
					if err != nil {
						b.Fatal(err)
					}
					task := virolab.Task()
					task.ID = id
					task.Process = process
					ids[j] = id
					sub := engine.Submission{Task: task, Tenant: tenants[j%len(tenants)]}
					if _, err := env.Engine.Submit(sub); err != nil {
						b.Fatal(err)
					}
				}
				for _, id := range ids {
					for {
						st, err := env.Engine.Task(id)
						if err != nil {
							b.Fatal(err)
						}
						if st.Status == engine.StatusCompleted {
							break
						}
						if st.Status == engine.StatusFailed || st.Status == engine.StatusCancelled {
							b.Fatalf("task %s ended %s: %s", id, st.Status, st.Error)
						}
						time.Sleep(time.Millisecond)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*burst)/b.Elapsed().Seconds(), "tasks/sec")
		})
	}
}

// BenchmarkPDLParseFig10 measures parsing the Figure 10 PDL text.
func BenchmarkPDLParseFig10(b *testing.B) {
	text, err := pdl.Format(virolab.PlanTree())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := pdl.Parse(text); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServiceCallRoundTrip measures one request/reply between core
// services (the unit cost of every arrow in Figures 2 and 3).
func BenchmarkServiceCallRoundTrip(b *testing.B) {
	p := agent.NewPlatform()
	defer p.Shutdown()
	g := grid.New(1)
	_ = g.AddNode(&grid.Node{ID: "n", Hardware: grid.Hardware{Speed: 1}})
	if _, err := services.Bootstrap(p, g); err != nil {
		b.Fatal(err)
	}
	client := p.MustRegister("bench-client", agent.HandlerFunc(func(*agent.Context, agent.Message) {}))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := client.Call(services.MonitoringName, services.OntMonitoring,
			services.NodeStatusRequest{Node: "n"}, time.Second); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGridSimScalability runs the simulation-service what-if model at
// two grid sizes (the cmd/gridsim sweep's endpoints).
func BenchmarkGridSimScalability(b *testing.B) {
	for _, clusters := range []int{4, 32} {
		b.Run(fmt.Sprintf("clusters=%d", clusters), func(b *testing.B) {
			cfg := grid.DefaultSyntheticConfig()
			cfg.Clusters = clusters
			cfg.SMPs = clusters / 2
			g := grid.Synthetic(cfg)
			sim := services.Simulation{Grid: g}
			tasks := make([]services.TaskSpec, 64)
			for i := range tasks {
				tasks[i] = services.TaskSpec{ID: fmt.Sprintf("t%d", i), Service: "P3DR", BaseTime: 1800, DataMB: 1500}
			}
			var res services.SimulateReply
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res = sim.Simulate(services.SimulateRequest{Tasks: tasks, InterArrival: 10, Retries: 2, Seed: 1})
			}
			b.ReportMetric(res.Makespan, "makespan-s")
			b.ReportMetric(res.Utilization*100, "utilization-pct")
		})
	}
}

// --- Planning-service benches (the /api/v1/plans production surface) ------

// BenchmarkGPPlanningParallel measures plan-level throughput through the
// planning service at 1, 4, and 8 plan workers: a burst of 16 distinct
// seeded cases (every one a cold plan — the cache is bypassed) at the
// reduced GP budget, timed until the last plan settles. EvalWorkers is
// pinned to 1 so the scaling measured is the service worker pool's, not
// the per-run evaluator's; plans/sec is the headline metric the ≥8×
// throughput target on 8 cores is judged by.
func BenchmarkGPPlanningParallel(b *testing.B) {
	const burst = 16
	problem := virolab.Problem()
	for _, workers := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			svc, err := planner.NewService(planner.ServiceConfig{
				Catalog:       problem.Catalog,
				Params:        reducedParams(),
				Workers:       workers,
				QueueCapacity: burst * 2,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ids := make([]string, burst)
				for j := range ids {
					p := reducedParams()
					p.Seed = int64(i*burst + j + 1)
					p.EvalWorkers = 1
					spec := planner.PlanSpec{
						ID:      fmt.Sprintf("par-%d-%d", i, j),
						Initial: problem.Initial.Items(),
						Goal:    problem.Goal.Conditions,
						Params:  &p,
						NoCache: true,
					}
					if _, err := svc.Submit(context.Background(), spec); err != nil {
						b.Fatal(err)
					}
					ids[j] = spec.ID
				}
				for _, id := range ids {
					st, err := svc.Wait(context.Background(), id)
					if err != nil || st.Status != planner.StatusSucceeded {
						b.Fatalf("plan %s: %+v, %v", id, st, err)
					}
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*burst)/b.Elapsed().Seconds(), "plans/sec")
		})
	}
}

// BenchmarkPlanCacheHit measures the warm path: the same canonical case
// submitted against a populated plan cache answers terminally at submit
// time. The per-op time is the <1ms warm-plan target.
func BenchmarkPlanCacheHit(b *testing.B) {
	problem := virolab.Problem()
	svc, err := planner.NewService(planner.ServiceConfig{
		Catalog: problem.Catalog,
		Params:  reducedParams(),
		Workers: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer svc.Close()
	spec := func(id string) planner.PlanSpec {
		return planner.PlanSpec{ID: id, Initial: problem.Initial.Items(), Goal: problem.Goal.Conditions}
	}
	if _, err := svc.Submit(context.Background(), spec("warmup")); err != nil {
		b.Fatal(err)
	}
	if st, err := svc.Wait(context.Background(), "warmup"); err != nil || st.Status != planner.StatusSucceeded {
		b.Fatalf("warmup plan: %+v, %v", st, err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := svc.Submit(context.Background(), spec(fmt.Sprintf("hit-%d", i)))
		if err != nil {
			b.Fatal(err)
		}
		if !st.CacheHit {
			b.Fatal("warm submit missed the plan cache")
		}
	}
}

// BenchmarkIncrementalReplan compares a cold plan against the Figure 3
// incremental re-plan of the same case: the failed plan's neighborhood
// seeds a reduced-budget run that excludes the dead service. The
// evals-vs-cold-pct metric is the <10%-of-cold acceptance bar.
func BenchmarkIncrementalReplan(b *testing.B) {
	problem := virolab.Problem()
	failed := plantree.Seq(
		plantree.Activity("POD"), plantree.Activity("P3DR"),
		plantree.Activity("POR"), plantree.Activity("P3DR"),
		plantree.Activity("PSF"),
	)
	var coldEvals, incEvals int
	for _, mode := range []string{"cold", "incremental"} {
		b.Run(mode, func(b *testing.B) {
			svc, err := planner.NewService(planner.ServiceConfig{
				Catalog: problem.Catalog,
				Params:  reducedParams(),
				Workers: 1,
			})
			if err != nil {
				b.Fatal(err)
			}
			defer svc.Close()
			evals := 0
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				p := reducedParams()
				p.Seed = int64(i + 1)
				spec := planner.PlanSpec{
					ID:      fmt.Sprintf("%s-%d", mode, i),
					Initial: problem.Initial.Items(),
					Goal:    problem.Goal.Conditions,
					NoCache: true,
				}
				if mode == "incremental" {
					spec.Excluded = []string{"POR"}
					spec.Failed = failed
					inc := p.Incremental()
					spec.Params = &inc
				} else {
					spec.Params = &p
				}
				if _, err := svc.Submit(context.Background(), spec); err != nil {
					b.Fatal(err)
				}
				st, err := svc.Wait(context.Background(), spec.ID)
				if err != nil || st.Status != planner.StatusSucceeded {
					b.Fatalf("%s plan %d: %+v, %v", mode, i, st, err)
				}
				evals += st.Evaluations
			}
			b.StopTimer()
			b.ReportMetric(float64(evals)/float64(b.N), "evals/plan")
			if mode == "cold" {
				coldEvals = evals / b.N
			} else {
				incEvals = evals / b.N
				if coldEvals > 0 {
					b.ReportMetric(100*float64(incEvals)/float64(coldEvals), "evals-vs-cold-pct")
				}
			}
		})
	}
}

// --- Cluster benches (the internal/cluster scale-out path) ----------------

// BenchmarkClusterForwardOverhead prices the forwarding hop: a 2-node
// in-process cluster serves GETs of a finished task through the node that
// owns it (local) and through its peer (forwarded — one extra loopback HTTP
// exchange plus header copying). The per-op difference between the two
// sub-benchmarks is the cost a request pays for arriving at the wrong node.
func BenchmarkClusterForwardOverhead(b *testing.B) {
	type member struct {
		env *core.Environment
		ts  *httptest.Server
	}
	nodes := make([]member, 2)
	for i := range nodes {
		env, err := core.NewEnvironment(core.Options{
			Catalog:     virolab.Catalog(),
			Planner:     reducedParams(),
			PostProcess: virolab.ResolutionHook(nil),
		})
		if err != nil {
			b.Fatal(err)
		}
		defer env.Close()
		srv := httpapi.New(env)
		srv.Logger = nil
		ts := httptest.NewServer(srv.Handler())
		defer ts.Close()
		nodes[i] = member{env: env, ts: ts}
	}
	peers := []cluster.Peer{
		{ID: "n0", Addr: nodes[0].ts.URL},
		{ID: "n1", Addr: nodes[1].ts.URL},
	}
	var ring *cluster.Node
	for i, m := range nodes {
		node, err := cluster.New(cluster.Config{
			NodeID: fmt.Sprintf("n%d", i), Peers: peers,
			Engine: m.env.Engine, Telemetry: m.env.Telemetry,
		})
		if err != nil {
			b.Fatal(err)
		}
		m.env.AttachCluster(node)
		if i == 0 {
			ring = node
		}
	}

	// One finished task per node, IDs picked by ring ownership so a GET via
	// node 0 is handled locally for the first and forwarded for the second.
	pick := func(wantSelf bool) string {
		for i := 0; ; i++ {
			id := fmt.Sprintf("bench-fwd-%v-%d", wantSelf, i)
			if _, self := ring.Owner("", id); self == wantSelf {
				return id
			}
		}
	}
	localID, fwdID := pick(true), pick(false)
	for i, id := range []string{localID, fwdID} {
		task := virolab.Task()
		task.ID = id
		if _, err := nodes[i].env.Engine.Submit(engine.Submission{Task: task}); err != nil {
			b.Fatal(err)
		}
		for {
			st, err := nodes[i].env.Engine.Task(id)
			if err != nil {
				b.Fatal(err)
			}
			if st.Status == engine.StatusCompleted {
				break
			}
			if st.Status == engine.StatusFailed || st.Status == engine.StatusCancelled {
				b.Fatalf("task %s ended %s: %s", id, st.Status, st.Error)
			}
			time.Sleep(time.Millisecond)
		}
	}

	get := func(b *testing.B, id string, wantOwner string) {
		b.Helper()
		client := &http.Client{}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			resp, err := client.Get(nodes[0].ts.URL + "/api/v1/tasks/" + id)
			if err != nil {
				b.Fatal(err)
			}
			_, _ = io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				b.Fatalf("GET %s = %d", id, resp.StatusCode)
			}
			if got := resp.Header.Get("X-Gridenv-Owner"); got != wantOwner {
				b.Fatalf("X-Gridenv-Owner = %q, want %q", got, wantOwner)
			}
		}
	}
	b.Run("local", func(b *testing.B) { get(b, localID, "") })
	b.Run("forwarded", func(b *testing.B) { get(b, fwdID, "n1") })
}

// BenchmarkCostAwareScheduling measures the cost-aware candidate scorer on a
// 64-node heterogeneous fleet — the per-dispatch overhead a budget- or
// deadline-constrained case adds to the coordinator's scheduling path
// (unconstrained cases skip it entirely). Metrics report the fraction of
// feasible candidates and the chosen head's cost so ranking changes show up
// next to the timing data.
func BenchmarkCostAwareScheduling(b *testing.B) {
	rng := newRand(11)
	const fleetSize = 64
	fleet := make([]services.Candidate, fleetSize)
	for i := range fleet {
		fleet[i] = services.Candidate{
			Container:     fmt.Sprintf("bc-%03d", i),
			Node:          fmt.Sprintf("bn-%03d", i),
			Domain:        fmt.Sprintf("bd-%d", i%6),
			Speed:         0.25 + rng.Float64()*4,
			Cost:          0.5 + rng.Float64()*9,
			BandwidthMbps: 100 + rng.Float64()*1900,
			LatencyUs:     rng.Float64() * 2000,
		}
	}
	perf := make(map[string]services.PerfStats, fleetSize)
	for i, c := range fleet {
		if i%3 == 0 {
			perf[c.Node] = services.PerfStats{
				Runs: 5, SuccessRate: 0.5 + rng.Float64()*0.5,
				MeanDuration: rng.Float64() * 6, MeanCost: rng.Float64() * 30,
			}
		}
	}
	inputs := []services.DataRef{
		{SizeMB: 120, Location: "bn-007"},
		{SizeMB: 40, Location: "elsewhere"},
		{SizeMB: 300}, // unknown location: free
	}

	var feasible int
	var headCost float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scored := services.ScoreCandidates(fleet, 2.5, inputs, perf, 4.0)
		ranked := services.RankCostAware(scored, i%2 == 1)
		for _, sc := range ranked {
			if sc.Feasible {
				feasible++
			}
		}
		headCost += ranked[0].EstCost
	}
	b.ReportMetric(float64(feasible)/float64(b.N)/fleetSize, "feasible-frac")
	b.ReportMetric(headCost/float64(b.N), "head-cost")
}

// newRand returns a deterministic random stream for the operator benches.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }

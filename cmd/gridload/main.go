// Command gridload is the deterministic multi-tenant load generator for the
// enactment engine (package load). It runs a seeded open- or closed-loop
// workload over a weighted tenant mix and prints a JSON latency/fairness
// report.
//
// Usage:
//
//	gridload [-mode sim|live] [-pattern closed|open] [-seed 1]
//	         [-tenants alpha:3,beta:1,gamma:1] [-n 1000]
//	         [-rate 100] [-outstanding 8] [-workers 4] [-capacity 0]
//	         [-service-mean 0.05] [-endpoints URL,URL,...] [-indent]
//	         [-scenario fairness|costmix] [-nodes 16]
//
// -scenario costmix runs the cost-aware scheduling mix instead of the
// fairness workload: a cheap/patient "batch" tenant and an expensive/urgent
// "rush" tenant dispatch -n tasks each over a -nodes fleet (half cheap-slow,
// half fast-expensive) through the production candidate scorer, and the
// report carries one SLO verdict per tenant (batch inside budget, rush
// meeting deadlines). Always a seeded virtual clock — byte-identical at a
// fixed seed.
//
// -endpoints (live mode) drives already-running gridenv processes over
// their HTTP API instead of building an in-process engine, round-robining
// submissions across the listed base URLs — point it at the members of a
// gridenv -peers cluster to measure whole-cluster goodput at 1, 2, or 4
// nodes, forwarding overhead included.
//
// The default sim mode replays the workload against the engine's actual
// fair-queue scheduling code under a virtual clock: the same seed and flags
// always print a byte-identical report, which makes it suitable for
// regression diffing in CI. Live mode builds a full in-process grid
// environment (synthetic grid, virolab catalog) and drives the real
// enactment engine, measuring wall-clock latencies; tenant weights from
// -tenants are applied to the engine's fair queue.
//
// Report fields: per-tenant submitted/accepted/rejected/completed counts,
// goodput share vs. weight share with relative deviation, latency
// mean/p50/p95/p99/max, plus Jain's fairness index over weight-normalized
// goodput. See the README "Multi-tenancy" section.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/load"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "gridload:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("gridload", flag.ContinueOnError)
	var (
		mode        = fs.String("mode", "sim", "sim (virtual clock, reproducible) or live (real engine)")
		pattern     = fs.String("pattern", "closed", "arrival pattern: closed (saturating windows) or open (Poisson)")
		seed        = fs.Int64("seed", 1, "seed for arrivals, mixes, and service times")
		tenants     = fs.String("tenants", "alpha:3,beta:1,gamma:1", "tenant mix as id:weight[:share],...")
		n           = fs.Int("n", 1000, "total tasks: completions (closed) or submissions (open)")
		rate        = fs.Float64("rate", 100, "open-loop aggregate arrival rate per second")
		outstanding = fs.Int("outstanding", 8, "closed-loop in-flight window per tenant")
		workers     = fs.Int("workers", 4, "simulated workers (sim) / engine worker pool (live)")
		capacity    = fs.Int("capacity", 0, "admission queue capacity (0 = sized automatically)")
		serviceMean = fs.Float64("service-mean", 0.05, "simulated mean service seconds (sim only)")
		endpoints   = fs.String("endpoints", "", "comma-separated gridenv base URLs to drive over HTTP (live mode; empty = in-process engine)")
		traceparent = fs.Bool("traceparent", false, "send a fresh W3C traceparent header per submission so server traces join client-originated trace IDs (HTTP live mode)")
		indent      = fs.Bool("indent", false, "pretty-print the JSON report")
		scenario    = fs.String("scenario", "fairness", "fairness (tenant goodput mix) or costmix (cost-aware scheduling SLOs)")
		nodes       = fs.Int("nodes", 16, "costmix fleet size (half cheap-slow, half fast-expensive)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *scenario == "costmix" {
		cmSpec := load.CostMixSpec{Seed: *seed, Tasks: *n, Nodes: *nodes}
		if *n == 1000 {
			cmSpec.Tasks = 0 // fall back to the costmix default (200/tenant)
		}
		cmReport, err := load.RunCostMix(cmSpec)
		if err != nil {
			return err
		}
		enc := json.NewEncoder(out)
		if *indent {
			enc.SetIndent("", "  ")
		}
		return enc.Encode(cmReport)
	}
	if *scenario != "fairness" {
		return fmt.Errorf("unknown scenario %q (want fairness or costmix)", *scenario)
	}
	mix, err := load.ParseTenants(*tenants)
	if err != nil {
		return err
	}
	spec := load.Spec{
		Seed:           *seed,
		Mode:           *pattern,
		Tenants:        mix,
		Arrivals:       *n,
		RatePerSec:     *rate,
		Outstanding:    *outstanding,
		Workers:        *workers,
		QueueCapacity:  *capacity,
		ServiceMeanSec: *serviceMean,
	}

	var report *load.Report
	switch *mode {
	case "sim":
		if *endpoints != "" {
			return fmt.Errorf("-endpoints needs -mode live")
		}
		report, err = load.RunSim(spec)
	case "live":
		if *endpoints != "" {
			report, err = runHTTP(spec, strings.Split(*endpoints, ","), *traceparent)
		} else {
			report, err = runLive(spec)
		}
	default:
		return fmt.Errorf("unknown mode %q (want sim or live)", *mode)
	}
	if err != nil {
		return err
	}
	enc := json.NewEncoder(out)
	if *indent {
		enc.SetIndent("", "  ")
	}
	return enc.Encode(report)
}

// runLive builds an in-process grid environment with the spec's tenant
// weights and drives its enactment engine.
func runLive(spec load.Spec) (*load.Report, error) {
	weights := make(map[string]engine.TenantConfig, len(spec.Tenants))
	for _, t := range spec.Tenants {
		weights[t.ID] = engine.TenantConfig{Weight: t.Weight}
	}
	params := planner.DefaultParams()
	params.Seed = spec.Seed
	env, err := core.NewEnvironment(core.Options{
		Catalog:        virolab.Catalog(),
		Planner:        params,
		Workers:        spec.Workers,
		Tenants:        weights,
		RetainFinished: 2 * spec.Arrivals,
		// A touch of per-activity latency keeps every tenant's window
		// backlogged, so the measured shares reflect the scheduler.
		PostProcess: func(*workflow.Activity, []*workflow.DataItem, int) {
			time.Sleep(2 * time.Millisecond)
		},
	})
	if err != nil {
		return nil, err
	}
	defer env.Close()
	runner := &load.EngineRunner{
		Engine:   env.Engine,
		NewTask:  liveTask,
		Priority: engine.PriorityNormal,
	}
	return runner.Run(spec)
}

// runHTTP drives already-running gridenv nodes over their HTTP API,
// round-robining submissions across the endpoints — on a multi-node
// cluster (gridenv -peers) this measures whole-cluster goodput including
// the request-forwarding path. Endpoints are base URLs without trailing
// slash; whitespace around commas is tolerated.
func runHTTP(spec load.Spec, endpoints []string, traceparent bool) (*load.Report, error) {
	cleaned := make([]string, 0, len(endpoints))
	for _, e := range endpoints {
		e = strings.TrimSuffix(strings.TrimSpace(e), "/")
		if e != "" {
			cleaned = append(cleaned, e)
		}
	}
	runner := &load.HTTPRunner{Endpoints: cleaned, NewBody: liveBody, Traceparent: traceparent}
	return runner.Run(spec)
}

// liveBody builds the POST /api/v1/tasks JSON for the n-th task of a
// tenant — the same workload liveTask feeds the in-process engine.
func liveBody(tenant string, n int) (string, []byte, error) {
	id := fmt.Sprintf("%s-%d", tenant, n)
	type dataItem struct {
		Name           string             `json:"name"`
		Classification string             `json:"classification"`
		Props          map[string]float64 `json:"props,omitempty"`
		TextProps      map[string]string  `json:"textProps,omitempty"`
	}
	var items []dataItem
	for _, d := range virolab.InitialData() {
		it := dataItem{Name: d.Name}
		for k, v := range d.Props {
			switch {
			case k == workflow.PropClassification:
				it.Classification = v.Str()
			default:
				if num, ok := v.Num(); ok {
					if it.Props == nil {
						it.Props = map[string]float64{}
					}
					it.Props[k] = num
				} else {
					if it.TextProps == nil {
						it.TextProps = map[string]string{}
					}
					it.TextProps[k] = v.Str()
				}
			}
		}
		items = append(items, it)
	}
	body, err := json.Marshal(map[string]any{
		"id":          id,
		"name":        "gridload " + id,
		"pdl":         livePDL,
		"initialData": items,
		"goal":        []string{`G.Classification = "Density Map"`},
		"tenant":      tenant,
	})
	return id, body, err
}

const livePDL = `BEGIN, POD(D1, D7 -> D8), END`

func liveTask(tenant string, n int) (*workflow.Task, error) {
	id := fmt.Sprintf("%s-%d", tenant, n)
	p, err := pdl.ParseProcess(id, livePDL)
	if err != nil {
		return nil, err
	}
	c := workflow.NewCase(id, "gridload "+id)
	for _, d := range virolab.InitialData() {
		c.AddData(d)
	}
	c.Goal = workflow.NewGoal(`G.Classification = "Density Map"`)
	return &workflow.Task{ID: id, Name: c.Name, Case: c, Process: p}, nil
}

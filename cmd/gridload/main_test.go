package main

import (
	"bytes"
	"encoding/json"
	"os"
	"testing"

	"repro/internal/load"
)

// runToBytes runs the CLI with args into a pipe and returns stdout.
func runToBytes(t *testing.T, args ...string) []byte {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan []byte)
	go func() {
		var buf bytes.Buffer
		_, _ = buf.ReadFrom(r)
		done <- buf.Bytes()
	}()
	runErr := run(args, w)
	w.Close()
	out := <-done
	r.Close()
	if runErr != nil {
		t.Fatalf("run(%v): %v", args, runErr)
	}
	return out
}

// TestSimByteIdentical is the CLI half of the reproducibility criterion:
// identical flags produce identical bytes.
func TestSimByteIdentical(t *testing.T) {
	args := []string{"-mode", "sim", "-seed", "7", "-tenants", "a:3,b:1,c:1", "-n", "500"}
	first := runToBytes(t, args...)
	second := runToBytes(t, args...)
	if !bytes.Equal(first, second) {
		t.Fatal("two identical sim invocations produced different output")
	}
	var report load.Report
	if err := json.Unmarshal(first, &report); err != nil {
		t.Fatalf("output is not a JSON report: %v", err)
	}
	if report.Completed != 500 || len(report.Tenants) != 3 {
		t.Fatalf("report = %+v", report)
	}
}

func TestBadFlags(t *testing.T) {
	null, err := os.OpenFile(os.DevNull, os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer null.Close()
	for _, args := range [][]string{
		{"-mode", "warp"},
		{"-tenants", "nope"},
		{"-pattern", "square", "-mode", "sim"},
	} {
		if err := run(args, null); err == nil {
			t.Errorf("run(%v) succeeded, want error", args)
		}
	}
}

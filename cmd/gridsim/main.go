// Command gridsim studies the scalability of the environment with the
// simulation service (the paper: "Simulation services are necessary to
// study the scalability of the system"). It sweeps grid sizes and workload
// sizes, running the discrete-event what-if model for each point and
// printing makespan, utilization, and failure counts.
//
// Usage:
//
//	gridsim [-tasks 64] [-arrival 10] [-retries 2] [-seed 1]
//	        [-sweep "2,4,8,16"] [-schedule]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/grid"
	"repro/internal/services"
)

func main() {
	var (
		tasks     = flag.Int("tasks", 64, "tasks in the workload")
		arrival   = flag.Float64("arrival", 10, "inter-arrival time, simulated seconds")
		retries   = flag.Int("retries", 2, "retries per failed execution")
		seed      = flag.Int64("seed", 1, "simulation seed")
		sweepStr  = flag.String("sweep", "2,4,8,16,32", "comma-separated cluster counts to sweep")
		schedule  = flag.Bool("schedule", false, "also print the schedule for the largest grid")
		heuristic = flag.String("heuristic", "min-min", "scheduling heuristic: min-min, max-min, sufferage, fcfs")
	)
	flag.Parse()
	if err := run(*tasks, *arrival, *retries, *seed, *sweepStr, *schedule, *heuristic); err != nil {
		fmt.Fprintln(os.Stderr, "gridsim:", err)
		os.Exit(1)
	}
}

func run(tasks int, arrival float64, retries int, seed int64, sweepStr string, schedule bool, heuristicName string) error {
	var h services.Heuristic
	switch heuristicName {
	case "min-min":
		h = services.HeuristicMinMin
	case "max-min":
		h = services.HeuristicMaxMin
	case "sufferage":
		h = services.HeuristicSufferage
	case "fcfs":
		h = services.HeuristicFCFS
	default:
		return fmt.Errorf("unknown heuristic %q", heuristicName)
	}
	var sweep []int
	for _, part := range strings.Split(sweepStr, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return fmt.Errorf("bad sweep element %q", part)
		}
		sweep = append(sweep, n)
	}

	workload := make([]services.TaskSpec, tasks)
	kinds := []struct {
		service  string
		baseTime float64
		dataMB   float64
	}{
		{"POD", 600, 1500},
		{"P3DR", 1800, 1500},
		{"POR", 1200, 1500},
		{"PSF", 300, 100},
	}
	for i := range workload {
		k := kinds[i%len(kinds)]
		workload[i] = services.TaskSpec{
			ID:       fmt.Sprintf("t%03d", i),
			Service:  k.service,
			BaseTime: k.baseTime,
			DataMB:   k.dataMB,
		}
	}

	fmt.Printf("workload: %d tasks, inter-arrival %.0fs, %d retries\n\n", tasks, arrival, retries)
	fmt.Println("clusters  nodes  makespan(s)  utilization  completed  failed  retried")
	var lastGrid *grid.Grid
	for _, clusters := range sweep {
		cfg := grid.DefaultSyntheticConfig()
		cfg.Clusters = clusters
		cfg.SMPs = clusters / 2
		cfg.Supercomputers = 1
		cfg.Seed = seed
		g := grid.Synthetic(cfg)
		lastGrid = g
		sim := services.Simulation{Grid: g}
		res := sim.Simulate(services.SimulateRequest{
			Tasks:        workload,
			InterArrival: arrival,
			Retries:      retries,
			Seed:         seed,
		})
		fmt.Printf("%8d  %5d  %11.0f  %10.1f%%  %9d  %6d  %7d\n",
			clusters, len(g.Nodes()), res.Makespan, 100*res.Utilization,
			res.Completed, res.Failed, res.Retried)
	}

	if schedule && lastGrid != nil {
		fmt.Printf("\n%s schedule on the largest grid (first 20 assignments):\n", h)
		sched := (&services.Scheduling{Grid: lastGrid}).ScheduleWith(workload, h)
		for i, a := range sched.Assignments {
			if i >= 20 {
				fmt.Printf("  ... %d more\n", len(sched.Assignments)-20)
				break
			}
			fmt.Printf("  %-6s %-12s on %-12s %8.0f .. %8.0f\n", a.Task, a.Container, a.Node, a.Start, a.Finish)
		}
		fmt.Printf("  makespan: %.0fs\n", sched.Makespan)
	}
	return nil
}

package main

import "testing"

func TestRunSweep(t *testing.T) {
	if err := run(8, 10, 1, 1, "2,4", true, "max-min"); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadArgs(t *testing.T) {
	if err := run(4, 10, 1, 1, "2,x", false, "min-min"); err == nil {
		t.Error("bad sweep accepted")
	}
	if err := run(4, 10, 1, 1, "0", false, "min-min"); err == nil {
		t.Error("zero cluster count accepted")
	}
	if err := run(4, 10, 1, 1, "2", false, "bogus"); err == nil {
		t.Error("unknown heuristic accepted")
	}
}

package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "flow.pdl")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const goodPDL = `BEGIN, A; {FORK {B} {C} JOIN}; D, END`

func TestRunValidates(t *testing.T) {
	path := writeTemp(t, goodPDL)
	if err := run("p", false, false, false, true, []string{path}); err != nil {
		t.Fatal(err)
	}
	// All output modes exercise without error.
	if err := run("p", true, true, true, true, []string{path}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadInput(t *testing.T) {
	bad := writeTemp(t, "BEGIN, {FORK {A} JOIN}, END")
	if err := run("p", false, false, false, false, []string{bad}); err == nil {
		t.Error("single-branch FORK accepted")
	}
	if err := run("p", false, false, false, false, []string{"does-not-exist.pdl"}); err == nil {
		t.Error("missing file accepted")
	}
	if err := run("p", false, false, false, false, []string{"a", "b"}); err == nil {
		t.Error("two files accepted")
	}
}

// Command pdlc is the process-description language compiler: it parses PDL
// text (the Section 2 grammar), validates the resulting process description,
// and converts between representations.
//
// Usage:
//
//	pdlc [-tree] [-dot] [-format] [-stats] [file]
//
// With no file the source is read from standard input. With no output flag
// the tool validates and prints a summary. -tree prints the plan-tree
// s-expression (Figure 11 form), -dot emits Graphviz, -format pretty-prints
// canonical PDL, -stats prints activity counts.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/pdl"
	"repro/internal/plantree"
	"repro/internal/workflow"
)

func main() {
	var (
		showTree = flag.Bool("tree", false, "print the plan tree s-expression")
		showDot  = flag.Bool("dot", false, "print the process description as Graphviz dot")
		reformat = flag.Bool("format", false, "pretty-print canonical PDL")
		stats    = flag.Bool("stats", false, "print activity statistics")
		name     = flag.String("name", "process", "process name")
	)
	flag.Parse()
	if err := run(*name, *showTree, *showDot, *reformat, *stats, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "pdlc:", err)
		os.Exit(1)
	}
}

func run(name string, showTree, showDot, reformat, stats bool, args []string) error {
	var src []byte
	var err error
	switch len(args) {
	case 0:
		src, err = io.ReadAll(os.Stdin)
	case 1:
		src, err = os.ReadFile(args[0])
	default:
		return fmt.Errorf("at most one input file, got %d", len(args))
	}
	if err != nil {
		return err
	}

	tree, err := pdl.Parse(string(src))
	if err != nil {
		return err
	}
	p, err := plantree.ToProcess(name, tree)
	if err != nil {
		return err
	}
	if err := p.Validate(); err != nil {
		return err
	}

	printed := false
	if showTree {
		fmt.Println(tree)
		printed = true
	}
	if showDot {
		fmt.Print(p.DOT())
		printed = true
	}
	if reformat {
		text, err := pdl.Format(tree)
		if err != nil {
			return err
		}
		fmt.Print(text)
		printed = true
	}
	if stats || !printed {
		fmt.Printf("process %s: valid\n", name)
		fmt.Printf("  plan tree size:          %d (depth %d)\n", tree.Size(), tree.Depth())
		fmt.Printf("  end-user activities:     %d\n", p.CountKind(workflow.KindEndUser))
		flow := len(p.Activities) - p.CountKind(workflow.KindEndUser)
		fmt.Printf("  flow-control activities: %d\n", flow)
		fmt.Printf("  transitions:             %d\n", len(p.Transitions))
	}
	return nil
}

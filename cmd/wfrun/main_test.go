package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestRunFig10WithResume(t *testing.T) {
	if testing.Short() {
		t.Skip("full enactment in -short mode")
	}
	if err := run("", false, "", false, true, 3, 2, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunCustomPDL(t *testing.T) {
	path := filepath.Join(t.TempDir(), "flow.pdl")
	src := `BEGIN, POD(D1, D7 -> D8), END`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(path, false, "", true, false, 0, 2, 1, 0, 1); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejections(t *testing.T) {
	if err := run("missing.pdl", false, "", false, false, 0, 2, 1, 0, 1); err == nil {
		t.Error("missing PDL file accepted")
	}
	if err := run("", false, "no-such-node", false, false, 0, 2, 1, 0, 1); err == nil {
		t.Error("unknown fail node accepted")
	}
}

// Command wfrun enacts the case-study workflow (or a PDL file) on a
// simulated grid environment, exercising the full Figure 1 stack:
// coordination, matchmaking, application containers, checkpointing, and —
// with -fail — the Figure 3 re-planning flow.
//
// Usage:
//
//	wfrun [-pdl file] [-need-planning] [-fail node] [-trace] [-checkpoint]
//	      [-clusters 6] [-smps 3] [-supers 1] [-seed 1]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"repro/internal/coordination"
	"repro/internal/core"
	"repro/internal/grid"
	"repro/internal/pdl"
	"repro/internal/planner"
	"repro/internal/virolab"
)

func main() {
	var (
		pdlFile      = flag.String("pdl", "", "enact this PDL file instead of the built-in Figure 10 workflow")
		needPlanning = flag.Bool("need-planning", false, "submit the case without a process description (Figure 2 flow)")
		failNode     = flag.String("fail", "", "fail this node before enactment (exercises Figure 3 re-planning)")
		trace        = flag.Bool("trace", false, "print the enactment trace")
		checkpoint   = flag.Bool("checkpoint", true, "checkpoint after each dispatch batch")
		resumeFrom   = flag.Int("resume", 0, "after the run, resume from this checkpoint version to demonstrate recovery (0 = off)")
		clusters     = flag.Int("clusters", 6, "PC clusters in the synthetic grid")
		smps         = flag.Int("smps", 3, "SMP nodes in the synthetic grid")
		supers       = flag.Int("supers", 1, "supercomputers in the synthetic grid")
		seed         = flag.Int64("seed", 1, "grid and planner seed")
	)
	flag.Parse()
	if err := run(*pdlFile, *needPlanning, *failNode, *trace, *checkpoint, *resumeFrom, *clusters, *smps, *supers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "wfrun:", err)
		os.Exit(1)
	}
}

func run(pdlFile string, needPlanning bool, failNode string, trace, checkpoint bool, resumeFrom, clusters, smps, supers int, seed int64) error {
	gridCfg := grid.DefaultSyntheticConfig()
	gridCfg.Clusters = clusters
	gridCfg.SMPs = smps
	gridCfg.Supercomputers = supers
	gridCfg.Seed = seed

	params := planner.DefaultParams()
	params.Seed = seed

	env, err := core.NewEnvironment(core.Options{
		GridConfig:  &gridCfg,
		Catalog:     virolab.Catalog(),
		Planner:     params,
		PostProcess: virolab.ResolutionHook(nil),
		Checkpoint:  checkpoint,
	})
	if err != nil {
		return err
	}
	defer env.Close()

	fmt.Printf("grid: %d nodes, %d containers\n", len(env.Grid.Nodes()), len(env.Grid.Containers()))
	for _, class := range env.Grid.EquivalenceClasses() {
		fmt.Printf("  class %-24s %d nodes\n", class.Key, len(class.Nodes))
	}

	task := virolab.Task()
	switch {
	case needPlanning:
		task.Process = nil
		task.NeedPlanning = true
		fmt.Println("task: submitted without a process description (planning requested)")
	case pdlFile != "":
		src, err := os.ReadFile(pdlFile)
		if err != nil {
			return err
		}
		p, err := pdl.ParseProcess("custom", string(src))
		if err != nil {
			return err
		}
		task.Process = p
		fmt.Printf("task: enacting %s\n", pdlFile)
	default:
		fmt.Println("task: enacting the Figure 10 process description PD-3DSD")
	}

	if failNode != "" {
		if err := env.Grid.SetNodeUp(failNode, false); err != nil {
			return err
		}
		fmt.Printf("failure injected: node %s is down\n", failNode)
	}

	report, err := env.SubmitContext(context.Background(), task, nil)
	if err != nil {
		return err
	}
	printReport(report, trace)

	if resumeFrom > 0 {
		snap, err := coordination.LoadCheckpointVersion(env.Services.Storage, task.ID, resumeFrom)
		if err != nil {
			return err
		}
		fmt.Printf("\nresuming from checkpoint v%d (%d executions done)...\n", resumeFrom, snap.Executed)
		resumed, err := env.Coordinator.ResumeContext(context.Background(), snap, nil)
		if err != nil {
			return err
		}
		printReport(resumed, trace)
	}
	return nil
}

func printReport(r *coordination.Report, trace bool) {
	fmt.Printf("\nenactment report for task %s\n", r.TaskID)
	fmt.Printf("  completed:       %v (goal fitness %.2f)\n", r.Completed, r.GoalFitness)
	fmt.Printf("  activities fired:%5d\n", r.Fired)
	fmt.Printf("  executions:      %5d (failures %d, re-plans %d)\n", r.Executed, r.Failures, r.Replans)
	fmt.Printf("  simulated time:  %8.1f s\n", r.SimulatedTime)
	fmt.Printf("  total cost:      %8.2f\n", r.TotalCost)
	if r.FinalState != nil {
		fmt.Println("  final data state:")
		for _, item := range r.FinalState.Items() {
			fmt.Printf("    %s\n", item)
		}
	}
	if trace {
		fmt.Println("  trace:")
		for _, e := range r.Trace {
			fmt.Printf("    %-10s %-10s %s\n", e.Kind, e.Activity, e.Detail)
		}
	}
}

// Command gridenv starts a complete grid environment — synthetic grid, core
// services, planning, coordination — and serves the User Interface HTTP API
// (package httpapi) on the given address.
//
// Usage:
//
//	gridenv [-addr :8080] [-clusters 6] [-smps 3] [-supers 1] [-seed 1]
//	        [-store mem:|file:DIR|bolt:PATH.db] [-store-batch N]
//	        [-store-interval D] [-workers N] [-enact-delay D]
//	        [-tenants alpha:3,beta:1] [-tenant-max-queued N]
//	        [-tenant-max-inflight N] [-tenant-rate R] [-tenant-burst N]
//	        [-node-id a -peers a=http://h1:8080,b=http://h2:8080]
//	        [-log-level info] [-log-format text] [-pprof]
//
// -store selects the storage backend by DSN: "mem:" (volatile, the default),
// "file:DIR" (append-only segmented log with rotation and compaction), or
// "bolt:PATH.db" (embedded single-file KV). On the durable backends,
// checkpoints, archived plans, and the enactment engine's write-ahead task
// journal survive restarts with no explicit save step: journal appends are
// group-committed (one fsync per batch; -store-batch bounds the batch,
// -store-interval adds an optional linger), and at startup the engine
// replays the journal — tasks that were accepted but never started are
// re-enqueued, tasks interrupted mid-enactment resume from their latest
// checkpoint, and finished tasks stay queryable. A bare path (no scheme) is
// the legacy mode: an in-memory store loaded from that JSON dump at startup
// and saved back on SIGINT/SIGTERM. -workers sizes the engine's coordinator
// worker pool (default: GOMAXPROCS); -enact-delay sleeps that long per
// enacted activity, emulating remote service latency for load experiments.
//
// -tenants assigns fair-share weights (id:weight,...) to named tenants; the
// -tenant-* flags set the default admission quotas — max queued tasks, max
// concurrent enactments, and token-bucket submit rate/burst — applied to
// every tenant without an explicit entry. Quota rejections answer HTTP 429
// tenant_queue_full / tenant_rate_limited with Retry-After and X-RateLimit-*
// headers; per-tenant accounting is served at /api/v1/tenants.
//
// Submissions may carry cost/deadline constraints ("budget", plus "deadline"
// with "hardDeadline":true): the scheduler then picks the cheapest candidate
// node that still meets the deadline, per-case spend is surfaced in the task
// view (spent/budget, deadlineSlackSec) and per-tenant spend as spentCost in
// /api/v1/tenants, and a blown constraint terminates the task with reason
// budget_exceeded or deadline_missed. See README "Cost-aware scheduling".
//
// -peers joins this process to a multi-node cluster: the value is the full
// static membership (id=addr or id=addr=weight, comma-separated, including
// this node, whose entry -node-id selects). Task and plan ownership is
// partitioned across members by consistent hashing; requests landing on a
// non-owner are forwarded to the owner transparently, /api/v1/cluster
// serves membership and health, and ?scope=cluster on /api/v1/stats and
// /api/v1/tenants aggregates across the cluster. See README "Clustering".
//
// Try it:
//
//	curl localhost:8080/api/v1/nodes
//	curl localhost:8080/api/v1/services
//	curl -X POST localhost:8080/api/v1/tasks -d '{"id":"T1","goal":["G.Classification = \"Resolution File\""],"initialData":[...]}'
//	curl -X POST localhost:8080/api/v1/tasks -d '{"id":"T2","budget":50,"deadline":30,"hardDeadline":true,"goal":[...],"initialData":[...]}'
//	curl localhost:8080/api/v1/tasks/T1/trace
//	curl localhost:8080/api/v1/metrics
//	curl localhost:8080/api/v1/metrics?format=prometheus
//	curl -N localhost:8080/api/v1/events
//	curl localhost:8080/api/v1/stats
//	curl localhost:8080/healthz localhost:8080/readyz
//
// Structured logs go to stderr; -log-level picks the threshold (debug, info,
// warn, error) and -log-format the encoding (text or json). -pprof mounts
// the net/http/pprof profiling handlers under /debug/pprof/.
//
// The unversioned /api/... aliases were removed: they answer 410 gone with a
// Link header naming the /api/v1 successor. See OBSERVABILITY.md for the
// metric names, the trace span schema, the log schema, and the event stream.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/grid"
	"repro/internal/httpapi"
	"repro/internal/load"
	"repro/internal/planner"
	"repro/internal/store"
	"repro/internal/telemetry"
	"repro/internal/virolab"
	"repro/internal/workflow"
)

func main() {
	var (
		addr      = flag.String("addr", ":8080", "listen address")
		clusters  = flag.Int("clusters", 6, "PC clusters in the synthetic grid")
		smps      = flag.Int("smps", 3, "SMP nodes")
		supers    = flag.Int("supers", 1, "supercomputers")
		seed      = flag.Int64("seed", 1, "grid and planner seed")
		storeDSN  = flag.String("store", "", "storage backend DSN: mem:, file:DIR, bolt:PATH.db (bare path = legacy JSON dump)")
		storeBat  = flag.Int("store-batch", 0, "group-commit batch bound for durable backends (0 = default)")
		storeIntv = flag.Duration("store-interval", 0, "group-commit linger interval (0 = flush when the flusher is free)")
		workers   = flag.Int("workers", 0, "enactment worker pool size (0 = GOMAXPROCS)")
		enactDel  = flag.Duration("enact-delay", 0, "emulated per-activity service latency (load experiments; 0 = none)")
		planWkrs  = flag.Int("plan-workers", 0, "planning service worker pool size (0 = GOMAXPROCS)")
		planCache = flag.Int("plan-cache", 0, "plan cache size in entries (0 = default 4096)")
		tenants   = flag.String("tenants", "", "per-tenant fair-share weights as id:weight,... (empty = all weight 1)")
		tMaxQ     = flag.Int("tenant-max-queued", 0, "default per-tenant queued-task quota (0 = unlimited)")
		tMaxIF    = flag.Int("tenant-max-inflight", 0, "default per-tenant concurrent-enactment cap (0 = unlimited)")
		tRate     = flag.Float64("tenant-rate", 0, "default per-tenant submit rate per second (0 = unlimited)")
		tBurst    = flag.Int("tenant-burst", 0, "default per-tenant submit burst (0 = max(1, ceil(rate)))")
		nodeID    = flag.String("node-id", "", "this node's cluster identity (required with -peers)")
		peers     = flag.String("peers", "", "cluster membership as id=addr[,id=addr=weight,...] including this node (empty = single-node)")
		heartbeat = flag.Duration("heartbeat", 0, "cluster heartbeat probe interval (0 = 500ms)")
		logLevel  = flag.String("log-level", "info", "structured log threshold: debug, info, warn, error")
		logFmt    = flag.String("log-format", "text", "structured log encoding: text or json")
		pprof     = flag.Bool("pprof", false, "mount net/http/pprof profiling handlers under /debug/pprof/")
		trSpans   = flag.Int("trace-spans", 0, "spans retained per task trace (0 = default 2048)")
		trTasks   = flag.Int("trace-tasks", 0, "task traces retained before the oldest is evicted (0 = default 1024)")
	)
	flag.Parse()
	clusterCfg := clusterOptions{nodeID: *nodeID, peers: *peers, heartbeat: *heartbeat}
	tenantCfg := tenantOptions{
		weights: *tenants,
		defaults: engine.TenantConfig{
			MaxQueued: *tMaxQ, MaxInFlight: *tMaxIF,
			RatePerSec: *tRate, Burst: *tBurst,
		},
	}
	storeCfg := storeOptions{
		dsn:   *storeDSN,
		flush: store.FlushConfig{MaxBatch: *storeBat, Interval: *storeIntv},
	}
	if err := run(*addr, *clusters, *smps, *supers, *seed, storeCfg, *workers, *enactDel, *planWkrs, *planCache, tenantCfg, clusterCfg, traceOptions{spanCap: *trSpans, maxTasks: *trTasks}, *logLevel, *logFmt, *pprof); err != nil {
		fmt.Fprintln(os.Stderr, "gridenv:", err)
		os.Exit(1)
	}
}

// storeOptions carries the storage flags into run.
type storeOptions struct {
	dsn   string
	flush store.FlushConfig
}

// split separates the DSN from the legacy bare-path form: a value with a
// known scheme is a backend DSN; anything else is a JSON dump path handled
// by the pre-DSN load/save flow on an in-memory backend.
func (s storeOptions) split() (dsn, legacyDump string) {
	switch {
	case s.dsn == "":
		return "", ""
	case strings.HasPrefix(s.dsn, "mem:"), strings.HasPrefix(s.dsn, "file:"), strings.HasPrefix(s.dsn, "bolt:"):
		return s.dsn, ""
	}
	return "", s.dsn
}

// clusterOptions carries the clustering flags into run.
type clusterOptions struct {
	nodeID    string
	peers     string
	heartbeat time.Duration
}

// node builds and starts the cluster node, or returns nil when -peers is
// unset (single-node deployment).
func (c clusterOptions) node(env *core.Environment) (*cluster.Node, error) {
	if c.peers == "" {
		if c.nodeID != "" {
			return nil, fmt.Errorf("-node-id given without -peers")
		}
		return nil, nil
	}
	if c.nodeID == "" {
		return nil, fmt.Errorf("-peers requires -node-id")
	}
	list, err := cluster.ParsePeers(c.peers)
	if err != nil {
		return nil, err
	}
	return cluster.New(cluster.Config{
		NodeID:            c.nodeID,
		Peers:             list,
		Engine:            env.Engine,
		Telemetry:         env.Telemetry,
		Logger:            env.Logger,
		HeartbeatInterval: c.heartbeat,
	})
}

// tenantOptions carries the tenancy flags into run.
type tenantOptions struct {
	weights  string
	defaults engine.TenantConfig
}

// resolve parses -tenants and merges the default quotas into every explicit
// entry, so a weighted tenant still gets the shared quota settings.
func (t tenantOptions) resolve() (map[string]engine.TenantConfig, engine.TenantConfig, error) {
	if t.weights == "" {
		return nil, t.defaults, nil
	}
	mix, err := load.ParseTenants(t.weights)
	if err != nil {
		return nil, t.defaults, err
	}
	out := make(map[string]engine.TenantConfig, len(mix))
	for _, m := range mix {
		cfg := t.defaults
		cfg.Weight = m.Weight
		out[m.ID] = cfg
	}
	return out, t.defaults, nil
}

// traceOptions carries the trace-retention flags into run.
type traceOptions struct {
	spanCap  int // spans per task trace; 0 = telemetry default
	maxTasks int // retained task traces; 0 = telemetry default
}

func run(addr string, clusters, smps, supers int, seed int64, storeCfg storeOptions, workers int, enactDelay time.Duration, planWorkers, planCache int, tenants tenantOptions, clusterCfg clusterOptions, traceCfg traceOptions, logLevel, logFmt string, pprof bool) error {
	gridCfg := grid.DefaultSyntheticConfig()
	gridCfg.Clusters = clusters
	gridCfg.SMPs = smps
	gridCfg.Supercomputers = supers
	gridCfg.Seed = seed
	params := planner.DefaultParams()
	params.Seed = seed
	logger, err := telemetry.NewLogger(os.Stderr, logLevel, logFmt)
	if err != nil {
		return err
	}
	tenantMap, tenantDefaults, err := tenants.resolve()
	if err != nil {
		return err
	}

	// -enact-delay emulates per-activity service latency (network + remote
	// compute) so load experiments exercise worker-pool capacity rather than
	// raw single-process CPU; it composes with the resolution hook.
	post := virolab.ResolutionHook(nil)
	if enactDelay > 0 {
		inner := post
		post = func(a *workflow.Activity, items []*workflow.DataItem, iter int) {
			time.Sleep(enactDelay)
			inner(a, items, iter)
		}
	}

	dsn, legacyDump := storeCfg.split()
	env, err := core.NewEnvironment(core.Options{
		GridConfig:     &gridCfg,
		Catalog:        virolab.Catalog(),
		Planner:        params,
		PostProcess:    post,
		Checkpoint:     true,
		StoreDSN:       dsn,
		StoreFlush:     storeCfg.flush,
		Workers:        workers,
		PlanWorkers:    planWorkers,
		PlanCacheSize:  planCache,
		Tenants:        tenantMap,
		TenantDefaults: tenantDefaults,
		TraceSpanCap:   traceCfg.spanCap,
		TraceMaxTasks:  traceCfg.maxTasks,
		Logger:         logger,
	})
	if err != nil {
		return err
	}
	defer env.Close()

	node, err := clusterCfg.node(env)
	if err != nil {
		return err
	}
	if node != nil {
		env.AttachCluster(node)
	}

	replay := dsn != "" && env.Store.Kind() != "mem"
	if legacyDump != "" {
		if err := env.Services.Storage.Load(legacyDump); err == nil {
			fmt.Printf("loaded persistent storage from %s\n", legacyDump)
			replay = true
		} else if !errors.Is(err, fs.ErrNotExist) {
			return err
		}
	}
	if replay {
		// Clustered nodes sharing a replicated store replay only their own
		// ring partition, so a restart does not steal live peers' tasks.
		var own func(tenant, taskID string) bool
		if node != nil {
			own = func(tenant, taskID string) bool {
				_, mine := node.Owner(tenant, taskID)
				return mine
			}
		}
		report, err := env.Engine.RecoverOwned(own)
		if err != nil {
			return fmt.Errorf("replaying task journal: %w", err)
		}
		if report.Total() > 0 || report.Terminal > 0 {
			fmt.Printf("journal replayed: %d requeued, %d resumed from checkpoint, %d restarted, %d already finished\n",
				len(report.Requeued), len(report.Resumed), len(report.Restarted), report.Terminal)
		}
	}
	if dsn != "" {
		fmt.Printf("storage backend: %s\n", env.Store.Kind())
	}

	ui := httpapi.New(env)
	ui.EnablePprof = pprof
	server := &http.Server{Addr: addr, Handler: ui.Handler()}
	errCh := make(chan error, 1)
	go func() { errCh <- server.ListenAndServe() }()
	if node != nil {
		// Heartbeats start once the HTTP server is accepting, since peers
		// probe this node's /healthz right back.
		node.Start()
		fmt.Printf("cluster node %s up: %d peers, ring %s\n",
			node.Self().ID, len(node.Ring().Members())-1, node.Ring().Version())
	}
	fmt.Printf("grid environment up: %d nodes, %d containers; serving on %s\n",
		len(env.Grid.Nodes()), len(env.Grid.Containers()), addr)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errCh:
		return err
	case <-sig:
	}
	_ = server.Close()
	if legacyDump != "" {
		if err := env.Services.Storage.Save(legacyDump); err != nil {
			return fmt.Errorf("saving storage: %w", err)
		}
		fmt.Printf("persistent storage saved to %s\n", legacyDump)
	}
	return nil
}

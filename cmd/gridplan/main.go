// Command gridplan reproduces the paper's Section 5 experiment: the
// GP-based planning service solving the virus-reconstruction planning
// problem. It runs the planner the requested number of times and prints the
// Table 1 parameter block and the Table 2 result aggregate, optionally
// comparing against the forward-search and random-search baselines.
//
// Usage:
//
//	gridplan [-runs 10] [-pop 200] [-gens 20] [-cx 0.7] [-mut 0.001]
//	         [-smax 40] [-wv 0.2] [-wg 0.5] [-seed 1] [-selection tournament]
//	         [-workers 0] [-baselines] [-print-params] [-history] [-v]
package main

import (
	"context"
	"flag"
	"fmt"
	"math"
	"os"

	"repro/internal/planner"
	"repro/internal/virolab"
)

func main() {
	var (
		runs        = flag.Int("runs", 10, "independent GP runs (the paper uses 10)")
		pop         = flag.Int("pop", 200, "population size")
		gens        = flag.Int("gens", 20, "number of generations")
		cx          = flag.Float64("cx", 0.7, "crossover rate")
		mut         = flag.Float64("mut", 0.001, "per-node mutation rate")
		smax        = flag.Int("smax", 40, "plan tree size limit Smax")
		wv          = flag.Float64("wv", 0.2, "validity fitness weight")
		wg          = flag.Float64("wg", 0.5, "goal fitness weight")
		seed        = flag.Int64("seed", 1, "base random seed")
		selection   = flag.String("selection", "tournament", "selection scheme: tournament or roulette")
		workers     = flag.Int("workers", 0, "parallel fitness-evaluation workers per run (0 = all cores)")
		baselines   = flag.Bool("baselines", false, "also run forward-search and random-search baselines")
		printParams = flag.Bool("print-params", false, "print the Table 1 parameter block and exit")
		history     = flag.Bool("history", false, "print per-generation best fitness of the first run")
		verbose     = flag.Bool("v", false, "print each run's best plan")
	)
	flag.Parse()

	params := planner.DefaultParams()
	params.PopulationSize = *pop
	params.Generations = *gens
	params.CrossoverRate = *cx
	params.MutationRate = *mut
	params.Smax = *smax
	params.WV = *wv
	params.WG = *wg
	params.WR = math.Round((1-*wv-*wg)*1e9) / 1e9
	params.Seed = *seed
	params.EvalWorkers = *workers
	switch *selection {
	case "tournament":
		params.Selection = planner.SelectTournament
	case "roulette":
		params.Selection = planner.SelectRoulette
	default:
		fmt.Fprintf(os.Stderr, "gridplan: unknown selection scheme %q\n", *selection)
		os.Exit(2)
	}
	if err := params.Validate(); err != nil {
		fmt.Fprintln(os.Stderr, "gridplan:", err)
		os.Exit(2)
	}

	printTable1(params)
	if *printParams {
		return
	}

	problem := virolab.Problem()
	results, err := planner.RunManyContext(context.Background(), problem, params, *runs)
	if err != nil {
		fmt.Fprintln(os.Stderr, "gridplan:", err)
		os.Exit(1)
	}
	if *verbose {
		for i, r := range results {
			fmt.Printf("run %2d: f=%.3f fv=%.2f fg=%.2f size=%d  %s\n",
				i+1, r.Best.Eval.Fitness, r.Best.Eval.FV, r.Best.Eval.FG,
				r.Best.Eval.Size, r.Best.Tree)
		}
	}
	if *history && len(results) > 0 {
		fmt.Println("\nGeneration history (run 1):")
		fmt.Println("  gen   best f   mean f   best size")
		for _, g := range results[0].History {
			fmt.Printf("  %3d   %.4f   %.4f   %d\n", g.Generation, g.BestFitness, g.MeanFitness, g.BestSize)
		}
	}
	printTable2(planner.Summarize(results))

	if *baselines {
		fmt.Println("\nBaselines:")
		if plan, err := planner.ForwardSearch(problem, 12); err == nil {
			ev, everr := planner.NewEvaluator(problem, params)
			if everr == nil {
				e := ev.Evaluate(plan)
				fmt.Printf("  forward search:  f=%.3f fv=%.2f fg=%.2f size=%d  %s\n",
					e.Fitness, e.FV, e.FG, e.Size, plan)
			}
		} else {
			fmt.Printf("  forward search:  %v\n", err)
		}
		budget := params.PopulationSize * (params.Generations + 1)
		if r, err := planner.RandomSearch(problem, params, budget); err == nil {
			e := r.Best.Eval
			fmt.Printf("  random search:   f=%.3f fv=%.2f fg=%.2f size=%d (budget %d)\n",
				e.Fitness, e.FV, e.FG, e.Size, budget)
		}
	}
}

func printTable1(p planner.Params) {
	fmt.Println("Table 1. Parameter settings in the experiments.")
	fmt.Printf("  Population Size        %d\n", p.PopulationSize)
	fmt.Printf("  Number of Generation   %d\n", p.Generations)
	fmt.Printf("  Crossover Rate         %g\n", p.CrossoverRate)
	fmt.Printf("  Mutation Rate          %g\n", p.MutationRate)
	fmt.Printf("  Smax                   %d\n", p.Smax)
	fmt.Printf("  wv                     %g\n", p.WV)
	fmt.Printf("  wg                     %g\n", p.WG)
	fmt.Printf("  (wr)                   %g\n", p.WR)
}

func printTable2(s planner.Summary) {
	fmt.Printf("\nTable 2. Experiment results collected from the best solutions of %d runs.\n", s.Runs)
	fmt.Printf("  Average Fitness             %.3f\n", s.AvgFitness)
	fmt.Printf("  Average Validity Fitness    %.3f\n", s.AvgValidity)
	fmt.Printf("  Average Goal Fitness        %.3f\n", s.AvgGoalFitness)
	fmt.Printf("  Average Size of solutions   %.1f\n", s.AvgSize)
	fmt.Printf("  (fitness range              %.3f .. %.3f)\n", s.MinFitness, s.MaxFitness)
	fmt.Printf("  (runs at fv=1: %d/%d, fg=1: %d/%d)\n",
		s.PerfectValidity, s.Runs, s.PerfectGoal, s.Runs)
}
